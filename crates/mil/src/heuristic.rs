//! The initial (feedback-free) query heuristic of §5.3.
//!
//! Before any relevance feedback exists, a bag's relevance is scored by
//! event-specific heuristics: the score of a sampling point is "the
//! square sum of all the three features in the feature vector
//! `α_i = [1/mdist_i, vdiff_i, θ_i]`"; a TS scores as its highest
//! sampling point, and a VS as its highest TS:
//! `S_v = max(S_T1, …, S_Tn)`, `S_Ti = max(S_a1, …, S_an)`.

use crate::bag::{Bag, Instance};

/// Squared-sum score of one sampling point.
///
/// Non-finite features (NaN from a degenerate upstream computation, ∞
/// from an unvalidated `1/mdist`) are skipped rather than propagated:
/// one corrupt feature must not poison the whole ranking, and a point
/// score is always finite.
pub fn point_score(row: &[f64]) -> f64 {
    row.iter()
        .filter(|x| x.is_finite())
        .map(|x| x * x)
        .sum()
}

/// Score of a trajectory sequence: its best sampling point.
pub fn instance_score(instance: &Instance) -> f64 {
    instance
        .points
        .iter()
        .map(|p| point_score(p))
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Score of a video sequence: its best trajectory sequence. Empty bags
/// score `-inf` (they can never be retrieved).
pub fn bag_score(bag: &Bag) -> f64 {
    bag.instances
        .iter()
        .map(instance_score)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Scores every bag; the batch equivalent of [`bag_score`], fanned out
/// over the [`tsvr_par`] runtime (order-preserving, so the result is
/// bit-identical to the sequential map). The per-bag cost hint — a few
/// tens of nanoseconds per feature row, sampled from the first bags —
/// keeps small or sparse databases on the sequential fast path instead
/// of paying the fork-join setup for sub-microsecond work.
pub fn bag_scores(bags: &[Bag]) -> Vec<f64> {
    let rows = bags
        .iter()
        .take(8)
        .map(|b| b.instances.iter().map(|i| i.points.len()).sum::<usize>())
        .max()
        .unwrap_or(0);
    let est = (rows as u64).saturating_mul(40).max(40);
    tsvr_par::par_map_est(bags, est, |_, b| bag_score(b))
}

/// Maps a NaN score to `-inf` so descending rankings (higher = better)
/// stay total under [`f64::total_cmp`] without letting an undefined
/// score win — the workspace-wide NaN→lowest ranking convention.
pub fn nan_to_lowest(score: f64) -> f64 {
    if score.is_nan() {
        f64::NEG_INFINITY
    } else {
        score
    }
}

/// Maps a NaN distance to `+inf` so ascending orderings (lower = better)
/// stay total without letting an undefined distance rank best — the
/// dual of [`nan_to_lowest`] for distance-like keys.
pub fn nan_to_highest(dist: f64) -> f64 {
    if dist.is_nan() {
        f64::INFINITY
    } else {
        dist
    }
}

/// Index of the highest-scoring instance in a bag, if any.
///
/// Comparison uses [`f64::total_cmp`]: even if a score were non-finite
/// the ordering stays total, where `partial_cmp(...).unwrap()` would
/// panic the whole retrieval loop on a single NaN.
pub fn best_instance(bag: &Bag) -> Option<usize> {
    (0..bag.instances.len()).max_by(|&a, &b| {
        instance_score(&bag.instances[a]).total_cmp(&instance_score(&bag.instances[b]))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Instance {
        Instance::new(1, vec![vec![0.01, 0.02, 0.0]; 3])
    }

    fn hot() -> Instance {
        Instance::new(
            2,
            vec![
                vec![0.0, 0.0, 0.0],
                vec![0.3, 0.9, 0.8], // accident checkpoint
                vec![0.1, 0.1, 0.0],
            ],
        )
    }

    #[test]
    fn point_score_is_square_sum() {
        assert!((point_score(&[0.3, 0.9, 0.8]) - (0.09 + 0.81 + 0.64)).abs() < 1e-12);
        assert_eq!(point_score(&[]), 0.0);
    }

    #[test]
    fn instance_takes_max_point() {
        assert!((instance_score(&hot()) - 1.54).abs() < 1e-12);
    }

    #[test]
    fn bag_takes_max_instance() {
        let b = Bag::new(0, vec![quiet(), hot()]);
        assert!((bag_score(&b) - 1.54).abs() < 1e-12);
        assert_eq!(best_instance(&b), Some(1));
    }

    #[test]
    fn hot_bag_outranks_quiet_bag() {
        let hot_bag = Bag::new(0, vec![quiet(), hot()]);
        let quiet_bag = Bag::new(1, vec![quiet(), quiet()]);
        assert!(bag_score(&hot_bag) > bag_score(&quiet_bag));
    }

    #[test]
    fn empty_bag_scores_neg_infinity() {
        let b = Bag::new(0, vec![]);
        assert_eq!(bag_score(&b), f64::NEG_INFINITY);
        assert_eq!(best_instance(&b), None);
    }

    #[test]
    fn nan_and_infinite_features_do_not_panic_or_poison() {
        // Regression: a single NaN α-feature used to panic best_instance
        // via partial_cmp(...).unwrap().
        let poisoned = Instance::new(
            7,
            vec![
                vec![f64::NAN, 0.2, 0.1],
                vec![f64::INFINITY, f64::NEG_INFINITY, f64::NAN],
            ],
        );
        let s = instance_score(&poisoned);
        assert!(s.is_finite(), "poisoned instance score {s}");
        assert!((point_score(&[f64::NAN, 0.2, 0.1]) - 0.05).abs() < 1e-12);
        assert_eq!(point_score(&[f64::INFINITY, f64::NEG_INFINITY, f64::NAN]), 0.0);

        let b = Bag::new(0, vec![poisoned, hot(), quiet()]);
        assert!(bag_score(&b).is_finite());
        // The hot instance still wins over the corrupt one.
        assert_eq!(best_instance(&b), Some(1));
    }

    #[test]
    fn bag_scores_matches_bag_score() {
        let bags = vec![
            Bag::new(0, vec![quiet(), hot()]),
            Bag::new(1, vec![quiet()]),
            Bag::new(2, vec![]),
        ];
        let batch = bag_scores(&bags);
        let seq: Vec<f64> = bags.iter().map(bag_score).collect();
        assert_eq!(batch, seq);
    }
}
