//! Bags and instances for Multiple Instance Learning.
//!
//! An [`Instance`] is one Trajectory Sequence: a short sequence of
//! per-checkpoint feature rows (the paper's `α = [α_1, …, α_n]`). A
//! [`Bag`] is one Video Sequence holding all the instances whose
//! vehicles cross that window.

/// One MIL instance: a trajectory sequence inside one window.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Caller-defined key (the vehicle track id in the retrieval
    /// pipeline).
    pub key: u64,
    /// Per-checkpoint feature rows, all of equal dimensionality.
    pub points: Vec<Vec<f64>>,
}

impl Instance {
    /// Creates an instance, checking row consistency.
    pub fn new(key: u64, points: Vec<Vec<f64>>) -> Instance {
        assert!(!points.is_empty(), "instance needs at least one point");
        let d = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == d),
            "instance rows have differing dimensions"
        );
        Instance { key, points }
    }

    /// Per-row dimensionality.
    pub fn dim(&self) -> usize {
        self.points[0].len()
    }

    /// The flat feature vector: concatenation of all rows (what the
    /// One-class SVM consumes — paper §5.3 learns "the entire trajectory
    /// sequence … not only the highest scored sampling point").
    pub fn concat(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.points.len() * self.dim());
        for p in &self.points {
            v.extend_from_slice(p);
        }
        v
    }

    /// The row with the largest squared norm (the "highest scored
    /// sampling point" used by the initial heuristic).
    pub fn peak_row(&self) -> &[f64] {
        self.points
            .iter()
            .max_by(|a, b| {
                let na: f64 = a.iter().map(|x| x * x).sum();
                let nb: f64 = b.iter().map(|x| x * x).sum();
                crate::heuristic::nan_to_lowest(na).total_cmp(&crate::heuristic::nan_to_lowest(nb))
            })
            .expect("instance has points")
    }
}

/// One MIL bag: a video sequence with its contained instances.
#[derive(Debug, Clone, PartialEq)]
pub struct Bag {
    /// Dense bag index within the dataset (used as the feedback key).
    pub id: usize,
    /// The instances contained in the bag.
    pub instances: Vec<Instance>,
}

impl Bag {
    /// Creates a bag.
    pub fn new(id: usize, instances: Vec<Instance>) -> Bag {
        Bag { id, instances }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the bag has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::new(
            7,
            vec![
                vec![0.1, 0.0, 0.0],
                vec![0.0, 0.9, 0.2],
                vec![0.0, 0.1, 0.0],
            ],
        )
    }

    #[test]
    fn instance_dim_and_concat() {
        let i = inst();
        assert_eq!(i.dim(), 3);
        let c = i.concat();
        assert_eq!(c.len(), 9);
        assert_eq!(c[0], 0.1);
        assert_eq!(c[4], 0.9);
    }

    #[test]
    fn peak_row_is_max_norm() {
        let i = inst();
        assert_eq!(i.peak_row(), &[0.0, 0.9, 0.2]);
    }

    #[test]
    #[should_panic]
    fn empty_instance_panics() {
        let _ = Instance::new(1, vec![]);
    }

    #[test]
    #[should_panic]
    fn ragged_instance_panics() {
        let _ = Instance::new(1, vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn bag_basics() {
        let b = Bag::new(3, vec![inst(), inst()]);
        assert_eq!(b.id, 3);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert!(Bag::new(0, vec![]).is_empty());
    }
}
