//! The interactive retrieval session (paper §5.3, Fig. 6).
//!
//! Protocol per query:
//!
//! 1. **Initial round** — rank every Video Sequence by the event
//!    heuristic (no feedback exists yet) and record accuracy@n.
//! 2. **Feedback rounds** — show the top `n` bags to the oracle
//!    (standing in for the user), collect relevant/irrelevant labels,
//!    let the learner update, re-rank the whole database with the
//!    learner's scores and record accuracy@n. The paper runs four
//!    feedback rounds (First…Fourth) with `n = 20`.

use crate::bag::Bag;
use crate::error::MilError;
use crate::heuristic;
use crate::metrics;
use crate::oracle::Oracle;

/// A retrieval learner driven by bag-level relevance feedback.
///
/// `Send + Sync` are supertraits so trained learners can live inside
/// a concurrent session manager (`tsvr-serve`) and be shared across
/// scatter-gather query threads (`tsvr-core::multiclip`): every
/// learner here is plain owned data, so the bounds cost implementors
/// nothing.
pub trait Learner: Send + Sync {
    /// Incorporates labeled bags. `feedback` holds `(bag_id, relevant)`
    /// pairs; bags the learner has already seen may repeat.
    fn learn(&mut self, bags: &[Bag], feedback: &[(usize, bool)]);

    /// Scores a bag; higher means more relevant.
    fn score(&self, bag: &Bag) -> f64;

    /// Scores every bag of a database; `result[i]` corresponds to
    /// `bags[i]`. The default is the sequential map; learners whose
    /// scoring is expensive (kernel expansions) override this to batch
    /// the work, with the contract that every returned value is
    /// bit-identical to the matching [`Learner::score`] call.
    fn score_all(&self, bags: &[Bag]) -> Vec<f64> {
        bags.iter().map(|b| self.score(b)).collect()
    }

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

impl Learner for Box<dyn Learner> {
    fn learn(&mut self, bags: &[Bag], feedback: &[(usize, bool)]) {
        (**self).learn(bags, feedback)
    }
    fn score(&self, bag: &Bag) -> f64 {
        (**self).score(bag)
    }
    fn score_all(&self, bags: &[Bag]) -> Vec<f64> {
        (**self).score_all(bags)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Session parameters.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Results per page shown to the user (paper: 20).
    pub top_n: usize,
    /// Number of feedback rounds after the initial query (paper: 4).
    pub feedback_rounds: usize,
    /// When true, the initial ranking uses the learner's own scores
    /// instead of the event heuristic — for learners seeded before the
    /// session starts (query by example, a model restored from a stored
    /// session). The paper's protocol is `false`.
    pub initial_from_learner: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            top_n: 20,
            feedback_rounds: 4,
            initial_from_learner: false,
        }
    }
}

/// Result of one session: accuracies and rankings per round (index 0 is
/// the initial round).
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Learner display name.
    pub learner: &'static str,
    /// Accuracy@n per round (`feedback_rounds + 1` entries).
    pub accuracies: Vec<f64>,
    /// Full ranking per round.
    pub rankings: Vec<Vec<usize>>,
    /// Number of relevant bags according to the oracle.
    pub relevant_total: usize,
    /// The accuracy ceiling imposed by relevant-bag scarcity.
    pub ceiling: f64,
}

impl SessionReport {
    /// The last round's ranking. A freshly [`RetrievalSession::run`]
    /// report always holds at least the initial round, but a report
    /// deserialized from a stored session may have been persisted with
    /// zero completed rounds — that state is a typed error here, not a
    /// panic.
    pub fn final_ranking(&self) -> Result<&[usize], MilError> {
        self.rankings
            .last()
            .map(Vec::as_slice)
            .ok_or(MilError::EmptyRanking)
    }

    /// The last round's accuracy@n, with the same zero-round guard as
    /// [`SessionReport::final_ranking`].
    pub fn final_accuracy(&self) -> Result<f64, MilError> {
        self.accuracies.last().copied().ok_or(MilError::EmptyRanking)
    }
}

/// Drives one learner through an interactive session.
pub struct RetrievalSession<'a, L: Learner, O: Oracle> {
    bags: &'a [Bag],
    learner: L,
    oracle: &'a O,
    config: SessionConfig,
}

impl<'a, L: Learner, O: Oracle> RetrievalSession<'a, L, O> {
    /// Creates a session over a bag database.
    ///
    /// ```
    /// use tsvr_mil::{
    ///     Bag, GroundTruthOracle, Instance, OcSvmMilLearner, RetrievalSession, SessionConfig,
    /// };
    /// use tsvr_svm::Kernel;
    ///
    /// // Two quiet bags and one with an accident-like instance.
    /// let hot = Instance::new(0, vec![vec![0.1, 0.9, 0.4]]);
    /// let quiet = |k| Instance::new(k, vec![vec![0.02, 0.01, 0.0]]);
    /// let bags = vec![
    ///     Bag::new(0, vec![quiet(1)]),
    ///     Bag::new(1, vec![quiet(2), hot]),
    ///     Bag::new(2, vec![quiet(3)]),
    /// ];
    /// let oracle = GroundTruthOracle::new(vec![false, true, false]);
    ///
    /// let session = RetrievalSession::new(
    ///     &bags,
    ///     OcSvmMilLearner::new(Kernel::Rbf { gamma: 2.0 }),
    ///     &oracle,
    ///     SessionConfig { top_n: 1, feedback_rounds: 1, ..SessionConfig::default() },
    /// );
    /// let (report, _) = session.run();
    /// assert_eq!(report.rankings[0][0], 1); // the accident bag ranks first
    /// assert_eq!(report.accuracies, vec![1.0, 1.0]);
    /// ```
    pub fn new(bags: &'a [Bag], learner: L, oracle: &'a O, config: SessionConfig) -> Self {
        RetrievalSession {
            bags,
            learner,
            oracle,
            config,
        }
    }

    /// Runs the full protocol and returns the per-round report (and the
    /// trained learner for inspection).
    pub fn run(mut self) -> (SessionReport, L) {
        let _session_span = tsvr_obs::tspan!("mil.session");
        let labels: Vec<bool> = (0..self.bags.len()).map(|i| self.oracle.label(i)).collect();
        let n = self.config.top_n;

        let mut rankings = Vec::with_capacity(self.config.feedback_rounds + 1);
        let mut accuracies = Vec::with_capacity(self.config.feedback_rounds + 1);

        // Initial round: heuristic scores for every learner, matching
        // the paper ("the initial accuracies of the two methods are the
        // same since the same retrieval algorithm is used") — unless the
        // learner arrives pre-seeded (query by example).
        let initial = if self.config.initial_from_learner {
            rank_scores(self.bags, &self.learner.score_all(self.bags))
        } else {
            rank_scores(self.bags, &heuristic::bag_scores(self.bags))
        };
        let initial_accuracy = metrics::accuracy_at(&initial, &labels, n);
        tsvr_obs::histogram!("mil.accuracy_at_n_pct").record((initial_accuracy * 100.0) as u64);
        accuracies.push(initial_accuracy);
        // Thread the current ranking through the loop directly instead
        // of reading it back via `rankings.last().unwrap()` — the loop
        // then has no rank-selection unwrap at all.
        let mut current = initial;

        for _ in 0..self.config.feedback_rounds {
            let _round_span = tsvr_obs::tspan!("mil.round");
            let feedback: Vec<(usize, bool)> = current
                .iter()
                .take(n)
                .map(|&b| (b, self.oracle.label(b)))
                .collect();
            self.learner.learn(self.bags, &feedback);
            let ranking = rank_scores(self.bags, &self.learner.score_all(self.bags));
            let accuracy = metrics::accuracy_at(&ranking, &labels, n);
            tsvr_obs::histogram!("mil.accuracy_at_n_pct").record((accuracy * 100.0) as u64);
            tsvr_obs::counter!("mil.feedback.labels").add(feedback.len() as u64);
            accuracies.push(accuracy);
            rankings.push(std::mem::replace(&mut current, ranking));
        }
        rankings.push(current);

        let relevant_total = labels.iter().filter(|&&l| l).count();
        let report = SessionReport {
            learner: self.learner.name(),
            accuracies,
            rankings,
            relevant_total,
            ceiling: metrics::accuracy_ceiling(&labels, n),
        };
        (report, self.learner)
    }
}

/// Ranks bag ids by descending score; ties and NaNs resolve by bag id so
/// rankings are deterministic.
pub fn rank_by(bags: &[Bag], score: impl FnMut(&Bag) -> f64) -> Vec<usize> {
    let scores: Vec<f64> = bags.iter().map(score).collect();
    rank_scores(bags, &scores)
}

/// Ranks bag ids by precomputed scores (`scores[i]` belongs to
/// `bags[i]`), descending. The comparator is total: NaN sorts with
/// `-inf` (never panics on a corrupt score) and exact ties resolve by
/// bag id, so rankings are deterministic.
pub fn rank_scores(bags: &[Bag], scores: &[f64]) -> Vec<usize> {
    assert_eq!(bags.len(), scores.len(), "one score per bag");
    let mut scored: Vec<(usize, f64)> = bags
        .iter()
        .zip(scores)
        .map(|(b, &s)| (b.id, if s.is_nan() { f64::NEG_INFINITY } else { s }))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Instance;
    use crate::ocsvm::OcSvmMilLearner;
    use crate::oracle::GroundTruthOracle;
    use crate::weighted_rf::{Normalization, WeightedRfLearner};
    use tsvr_svm::Kernel;

    /// A synthetic database: `n_hot` bags carry an accident-like
    /// instance, the rest only quiet traffic. Deterministic jitter makes
    /// bags distinct.
    fn database(n_bags: usize, n_hot: usize) -> (Vec<Bag>, Vec<bool>) {
        let mut bags = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_bags {
            let j = (i as f64 * 0.618).fract() * 0.05;
            let quiet = Instance::new(
                (i * 10) as u64,
                vec![
                    vec![0.02 + j, 0.01, 0.0],
                    vec![0.01, 0.03 + j, 0.01],
                    vec![0.0, 0.02, 0.02 + j],
                ],
            );
            let mut instances = vec![quiet];
            let hot = i < n_hot;
            if hot {
                instances.push(Instance::new(
                    (i * 10 + 1) as u64,
                    vec![
                        vec![0.05, 0.1, 0.02],
                        vec![0.3 + j, 0.8 + j, 0.6],
                        vec![0.2, 0.3, 0.1 + j],
                    ],
                ));
            }
            bags.push(Bag::new(i, instances));
            labels.push(hot);
        }
        (bags, labels)
    }

    #[test]
    fn rank_by_orders_descending_deterministically() {
        let (bags, _) = database(10, 3);
        let r = rank_by(&bags, heuristic::bag_score);
        assert_eq!(r.len(), 10);
        // Hot bags first.
        assert!(r[0] < 3 && r[1] < 3 && r[2] < 3);
        // Ties (identical quiet bags would tie) resolve by id: ranking
        // is reproducible.
        let r2 = rank_by(&bags, heuristic::bag_score);
        assert_eq!(r, r2);
    }

    #[test]
    fn ocsvm_session_improves_or_holds_accuracy() {
        let (bags, labels) = database(60, 8);
        let oracle = GroundTruthOracle::new(labels);
        let cfg = SessionConfig {
            top_n: 10,
            feedback_rounds: 4,
            ..SessionConfig::default()
        };
        let learner = OcSvmMilLearner::new(Kernel::Rbf { gamma: 2.0 });
        let (report, trained) = RetrievalSession::new(&bags, learner, &oracle, cfg).run();
        assert_eq!(report.accuracies.len(), 5);
        assert_eq!(report.rankings.len(), 5);
        // All 8 hot bags fit in the top 10: ceiling 0.8.
        assert!((report.ceiling - 0.8).abs() < 1e-12);
        // The easy separable case should end at the ceiling.
        let last = *report.accuracies.last().unwrap();
        assert!(
            last >= report.accuracies[0],
            "accuracy regressed: {:?}",
            report.accuracies
        );
        assert!(last >= 0.7, "final accuracy {last}");
        assert!(trained.model().is_some());
    }

    #[test]
    fn weighted_rf_session_runs_and_reports() {
        let (bags, labels) = database(40, 5);
        let oracle = GroundTruthOracle::new(labels);
        let cfg = SessionConfig {
            top_n: 10,
            feedback_rounds: 3,
            ..SessionConfig::default()
        };
        let learner = WeightedRfLearner::new(Normalization::Percentage);
        let (report, _) = RetrievalSession::new(&bags, learner, &oracle, cfg).run();
        assert_eq!(report.accuracies.len(), 4);
        assert_eq!(report.learner, "Weighted_RF");
        assert_eq!(report.relevant_total, 5);
    }

    #[test]
    fn initial_round_identical_across_learners() {
        // Paper: "the initial accuracies of the two methods are the same
        // since the same retrieval algorithm is used in the initial
        // round."
        let (bags, labels) = database(50, 6);
        let oracle = GroundTruthOracle::new(labels);
        let cfg = SessionConfig {
            top_n: 10,
            feedback_rounds: 1,
            ..SessionConfig::default()
        };
        let (ra, _) = RetrievalSession::new(
            &bags,
            OcSvmMilLearner::new(Kernel::Rbf { gamma: 2.0 }),
            &oracle,
            cfg,
        )
        .run();
        let (rb, _) = RetrievalSession::new(
            &bags,
            WeightedRfLearner::new(Normalization::Percentage),
            &oracle,
            cfg,
        )
        .run();
        assert_eq!(ra.rankings[0], rb.rankings[0]);
        assert_eq!(ra.accuracies[0], rb.accuracies[0]);
    }

    #[test]
    fn session_with_no_relevant_bags_degrades_gracefully() {
        let (bags, labels) = database(20, 0);
        let oracle = GroundTruthOracle::new(labels);
        let (report, _) = RetrievalSession::new(
            &bags,
            OcSvmMilLearner::new(Kernel::Rbf { gamma: 2.0 }),
            &oracle,
            SessionConfig::default(),
        )
        .run();
        assert!(report.accuracies.iter().all(|&a| a == 0.0));
        assert_eq!(report.relevant_total, 0);
        assert_eq!(report.ceiling, 0.0);
    }

    #[test]
    fn top_n_larger_than_database_is_safe() {
        let (bags, labels) = database(5, 2);
        let oracle = GroundTruthOracle::new(labels);
        let cfg = SessionConfig {
            top_n: 50,
            feedback_rounds: 2,
            ..SessionConfig::default()
        };
        let (report, _) = RetrievalSession::new(
            &bags,
            OcSvmMilLearner::new(Kernel::Rbf { gamma: 2.0 }),
            &oracle,
            cfg,
        )
        .run();
        // Accuracy is diluted by the empty page slots but well-defined.
        assert!((report.accuracies[0] - 2.0 / 50.0).abs() < 1e-12);
        assert_eq!(report.rankings[0].len(), 5);
    }

    #[test]
    fn tied_scores_rank_deterministically_by_id() {
        // All-identical bags: every learner scores them equally.
        let quiet = Instance::new(0, vec![vec![0.1, 0.1, 0.1]]);
        let bags: Vec<Bag> = (0..6).map(|i| Bag::new(i, vec![quiet.clone()])).collect();
        let r = rank_by(&bags, heuristic::bag_score);
        assert_eq!(r, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn learner_initial_mode_uses_learner_scores() {
        let (bags, labels) = database(20, 4);
        let oracle = GroundTruthOracle::new(labels);
        // Pre-train a learner on known feedback, then start a session in
        // learner-initial mode: round 0 must differ from the heuristic.
        let mut learner = OcSvmMilLearner::new(Kernel::Rbf { gamma: 6.0 });
        let fb: Vec<(usize, bool)> = (0..8).map(|i| (i, i < 4)).collect();
        learner.learn(&bags, &fb);
        let cfg = SessionConfig {
            top_n: 5,
            feedback_rounds: 0,
            initial_from_learner: true,
        };
        let (report, _) = RetrievalSession::new(&bags, learner, &oracle, cfg).run();
        let heuristic_ranking = rank_by(&bags, heuristic::bag_score);
        assert_ne!(report.rankings[0], heuristic_ranking);
    }

    #[test]
    fn final_ranking_and_accuracy_guard_empty_reports() {
        let (bags, labels) = database(20, 3);
        let oracle = GroundTruthOracle::new(labels);
        let (report, _) = RetrievalSession::new(
            &bags,
            OcSvmMilLearner::new(Kernel::Rbf { gamma: 2.0 }),
            &oracle,
            SessionConfig::default(),
        )
        .run();
        assert_eq!(
            report.final_ranking().expect("rounds ran"),
            report.rankings.last().expect("rounds ran").as_slice()
        );
        assert_eq!(
            report.final_accuracy().expect("rounds ran"),
            *report.accuracies.last().expect("rounds ran")
        );
        // A zero-round resumed report (e.g. restored from storage)
        // yields a typed error rather than panicking.
        let empty = SessionReport {
            learner: "MIL_OneClassSVM",
            accuracies: Vec::new(),
            rankings: Vec::new(),
            relevant_total: 0,
            ceiling: 0.0,
        };
        assert_eq!(empty.final_ranking(), Err(MilError::EmptyRanking));
        assert_eq!(empty.final_accuracy(), Err(MilError::EmptyRanking));
    }

    #[test]
    fn zero_feedback_rounds_is_initial_only() {
        let (bags, labels) = database(20, 3);
        let oracle = GroundTruthOracle::new(labels);
        let cfg = SessionConfig {
            top_n: 5,
            feedback_rounds: 0,
            ..SessionConfig::default()
        };
        let (report, _) = RetrievalSession::new(
            &bags,
            OcSvmMilLearner::new(Kernel::Rbf { gamma: 2.0 }),
            &oracle,
            cfg,
        )
        .run();
        assert_eq!(report.accuracies.len(), 1);
    }
}
