//! Property-based tests for the MIL framework invariants, driven by the
//! in-tree seeded harness (`tsvr_sim::check`).

use tsvr_mil::session::{rank_by, rank_scores};
use tsvr_mil::{heuristic, metrics, Bag, GroundTruthOracle, Instance, Oracle};
use tsvr_sim::check;
use tsvr_sim::Pcg32;

/// A database of bags with 1..4 instances of 3-D rows.
fn bag_db(rng: &mut Pcg32) -> Vec<Bag> {
    let n_bags = check::len_in(rng, 1, 20);
    (0..n_bags)
        .map(|id| {
            let n_instances = check::len_in(rng, 1, 4);
            let instances = (0..n_instances)
                .map(|k| {
                    let n_rows = check::len_in(rng, 1, 4);
                    let rows = (0..n_rows).map(|_| check::vec_f64(rng, 3, 0.0, 1.0)).collect();
                    Instance::new(k as u64, rows)
                })
                .collect();
            Bag::new(id, instances)
        })
        .collect()
}

#[test]
fn rank_by_is_a_permutation() {
    check::cases(128, |case, rng| {
        let bags = bag_db(rng);
        let ranking = rank_by(&bags, heuristic::bag_score);
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..bags.len()).collect::<Vec<_>>(), "case {case}");
        // Scores are non-increasing along the ranking.
        for w in ranking.windows(2) {
            assert!(
                heuristic::bag_score(&bags[w[0]]) >= heuristic::bag_score(&bags[w[1]])
                    || w[0] < w[1], // equal scores tie-break by id
                "case {case}: ranking not sorted by score"
            );
        }
    });
}

#[test]
fn heuristic_bag_score_equals_best_instance() {
    check::cases(128, |case, rng| {
        let bags = bag_db(rng);
        for bag in &bags {
            let s = heuristic::bag_score(bag);
            let best = bag
                .instances
                .iter()
                .map(heuristic::instance_score)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((s - best).abs() < 1e-12, "case {case}: {s} vs best {best}");
            // Adding a quiet instance never changes the score downward.
            let mut bigger = bag.clone();
            bigger
                .instances
                .push(Instance::new(99, vec![vec![0.0, 0.0, 0.0]]));
            assert!(
                heuristic::bag_score(&bigger) >= s,
                "case {case}: score dropped"
            );
        }
    });
}

#[test]
fn instance_score_monotone_under_scaling() {
    check::cases(128, |case, rng| {
        let n_rows = check::len_in(rng, 1, 5);
        let rows: Vec<Vec<f64>> = (0..n_rows).map(|_| check::vec_f64(rng, 3, 0.0, 1.0)).collect();
        let k = rng.uniform(1.0, 3.0);
        let a = Instance::new(0, rows.clone());
        let scaled = Instance::new(
            0,
            rows.iter()
                .map(|r| r.iter().map(|x| x * k).collect())
                .collect(),
        );
        assert!(
            heuristic::instance_score(&scaled) >= heuristic::instance_score(&a) - 1e-12,
            "case {case}: scaling decreased score"
        );
    });
}

/// Bags whose rows are randomly poisoned with NaN/±∞ — the shape of
/// upstream feature corruption (unvalidated `1/mdist`, degenerate
/// angles).
fn poisoned_bag_db(rng: &mut Pcg32) -> Vec<Bag> {
    let n_bags = check::len_in(rng, 1, 16);
    (0..n_bags)
        .map(|id| {
            let n_instances = check::len_in(rng, 1, 4);
            let instances = (0..n_instances)
                .map(|k| {
                    let n_rows = check::len_in(rng, 1, 4);
                    let rows = (0..n_rows)
                        .map(|_| {
                            let mut row = check::vec_f64(rng, 3, -2.0, 2.0);
                            for x in row.iter_mut() {
                                if rng.chance(0.2) {
                                    *x = match rng.uniform_usize(3) {
                                        0 => f64::NAN,
                                        1 => f64::INFINITY,
                                        _ => f64::NEG_INFINITY,
                                    };
                                }
                            }
                            row
                        })
                        .collect();
                    Instance::new(k as u64, rows)
                })
                .collect();
            Bag::new(id, instances)
        })
        .collect()
}

#[test]
fn adversarial_features_keep_scores_finite_and_ranking_total() {
    check::cases(128, |case, rng| {
        let bags = poisoned_bag_db(rng);
        for bag in &bags {
            // Regression (NaN-safe ranking): scoring skips non-finite
            // features instead of propagating them, and best_instance
            // uses a total comparator instead of panicking.
            let s = heuristic::bag_score(bag);
            assert!(s.is_finite(), "case {case}: bag score {s}");
            assert!(
                heuristic::best_instance(bag).is_some(),
                "case {case}: no best instance in non-empty bag"
            );
        }
        // The batch scorer is bit-identical to the per-bag scorer.
        let batch = heuristic::bag_scores(&bags);
        for (b, bag) in batch.iter().zip(&bags) {
            assert_eq!(
                b.to_bits(),
                heuristic::bag_score(bag).to_bits(),
                "case {case}: batch/single mismatch"
            );
        }
        // The ranking is a permutation even on poisoned scores.
        let ranking = rank_by(&bags, heuristic::bag_score);
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..bags.len()).collect::<Vec<_>>(), "case {case}");
        // rank_scores stays total when fed raw NaN/±∞ scores directly.
        let raw: Vec<f64> = (0..bags.len())
            .map(|_| match rng.uniform_usize(5) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => rng.uniform(-1.0, 1.0),
            })
            .collect();
        let ranking = rank_scores(&bags, &raw);
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..bags.len()).collect::<Vec<_>>(), "case {case}");
    });
}

#[test]
fn accuracy_bounds_and_consistency() {
    check::cases(128, |case, rng| {
        let n_labels = check::len_in(rng, 1, 40);
        let labels = check::vec_bool(rng, n_labels, 0.5);
        let n = check::len_in(rng, 1, 25);
        let ranking: Vec<usize> = (0..labels.len()).collect();
        let acc = metrics::accuracy_at(&ranking, &labels, n);
        assert!((0.0..=1.0).contains(&acc), "case {case}: acc {acc}");
        assert!(
            acc <= metrics::accuracy_ceiling(&labels, n) + 1e-12,
            "case {case}: above ceiling"
        );
        let recall = metrics::recall_at(&ranking, &labels, n);
        assert!((0.0..=1.0).contains(&recall), "case {case}: recall {recall}");
        // Full-length recall is 1 when any relevant exist.
        let full = metrics::recall_at(&ranking, &labels, labels.len());
        if labels.iter().any(|&l| l) {
            assert!((full - 1.0).abs() < 1e-12, "case {case}: full recall {full}");
        } else {
            assert_eq!(full, 0.0, "case {case}");
        }
    });
}

#[test]
fn average_precision_is_maximal_for_perfect_ranking() {
    check::cases(128, |case, rng| {
        let n_labels = check::len_in(rng, 1, 30);
        let labels = check::vec_bool(rng, n_labels, 0.5);
        if !labels.iter().any(|&l| l) {
            return; // degenerate draw: AP undefined without positives
        }
        // Perfect ranking: all relevant first.
        let mut perfect: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
        perfect.extend((0..labels.len()).filter(|&i| !labels[i]));
        let ap_perfect = metrics::average_precision(&perfect, &labels);
        assert!(
            (ap_perfect - 1.0).abs() < 1e-12,
            "case {case}: perfect AP {ap_perfect}"
        );
        // Any other ranking scores no higher.
        let identity: Vec<usize> = (0..labels.len()).collect();
        assert!(
            metrics::average_precision(&identity, &labels) <= ap_perfect + 1e-12,
            "case {case}: identity beats perfect"
        );
    });
}

#[test]
fn oracle_counts_match_labels() {
    check::cases(128, |case, rng| {
        let n_labels = rng.uniform_usize(50);
        let labels = check::vec_bool(rng, n_labels, 0.5);
        let o = GroundTruthOracle::new(labels.clone());
        assert_eq!(
            o.relevant_count(),
            labels.iter().filter(|&&l| l).count(),
            "case {case}"
        );
        for (i, &l) in labels.iter().enumerate() {
            assert_eq!(o.label(i), l, "case {case}: label {i}");
        }
    });
}
