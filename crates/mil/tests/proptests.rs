//! Property-based tests for the MIL framework invariants.

use proptest::prelude::*;
use tsvr_mil::session::rank_by;
use tsvr_mil::{heuristic, metrics, Bag, GroundTruthOracle, Instance, Oracle};

/// Strategy: a database of bags with 1..4 instances of 3-D rows.
fn bag_db() -> impl Strategy<Value = Vec<Bag>> {
    prop::collection::vec(
        prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 1..4),
            1..4,
        ),
        1..20,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(id, instances)| {
                Bag::new(
                    id,
                    instances
                        .into_iter()
                        .enumerate()
                        .map(|(k, rows)| Instance::new(k as u64, rows))
                        .collect(),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_by_is_a_permutation(bags in bag_db()) {
        let ranking = rank_by(&bags, heuristic::bag_score);
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..bags.len()).collect::<Vec<_>>());
        // Scores are non-increasing along the ranking.
        for w in ranking.windows(2) {
            prop_assert!(
                heuristic::bag_score(&bags[w[0]]) >= heuristic::bag_score(&bags[w[1]])
                    || w[0] < w[1] // equal scores tie-break by id
            );
        }
    }

    #[test]
    fn heuristic_bag_score_equals_best_instance(bags in bag_db()) {
        for bag in &bags {
            let s = heuristic::bag_score(bag);
            let best = bag
                .instances
                .iter()
                .map(heuristic::instance_score)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((s - best).abs() < 1e-12);
            // Adding a quiet instance never changes the score downward.
            let mut bigger = bag.clone();
            bigger
                .instances
                .push(Instance::new(99, vec![vec![0.0, 0.0, 0.0]]));
            prop_assert!(heuristic::bag_score(&bigger) >= s);
        }
    }

    #[test]
    fn instance_score_monotone_under_scaling(rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 1..5), k in 1.0f64..3.0) {
        let a = Instance::new(0, rows.clone());
        let scaled = Instance::new(
            0,
            rows.iter()
                .map(|r| r.iter().map(|x| x * k).collect())
                .collect(),
        );
        prop_assert!(heuristic::instance_score(&scaled) >= heuristic::instance_score(&a) - 1e-12);
    }

    #[test]
    fn accuracy_bounds_and_consistency(
        labels in prop::collection::vec(any::<bool>(), 1..40),
        n in 1usize..25,
    ) {
        let ranking: Vec<usize> = (0..labels.len()).collect();
        let acc = metrics::accuracy_at(&ranking, &labels, n);
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!(acc <= metrics::accuracy_ceiling(&labels, n) + 1e-12);
        let recall = metrics::recall_at(&ranking, &labels, n);
        prop_assert!((0.0..=1.0).contains(&recall));
        // Full-length recall is 1 when any relevant exist.
        let full = metrics::recall_at(&ranking, &labels, labels.len());
        if labels.iter().any(|&l| l) {
            prop_assert!((full - 1.0).abs() < 1e-12);
        } else {
            prop_assert_eq!(full, 0.0);
        }
    }

    #[test]
    fn average_precision_is_maximal_for_perfect_ranking(labels in prop::collection::vec(any::<bool>(), 1..30)) {
        prop_assume!(labels.iter().any(|&l| l));
        // Perfect ranking: all relevant first.
        let mut perfect: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
        perfect.extend((0..labels.len()).filter(|&i| !labels[i]));
        let ap_perfect = metrics::average_precision(&perfect, &labels);
        prop_assert!((ap_perfect - 1.0).abs() < 1e-12);
        // Any other ranking scores no higher.
        let identity: Vec<usize> = (0..labels.len()).collect();
        prop_assert!(metrics::average_precision(&identity, &labels) <= ap_perfect + 1e-12);
    }

    #[test]
    fn oracle_counts_match_labels(labels in prop::collection::vec(any::<bool>(), 0..50)) {
        let o = GroundTruthOracle::new(labels.clone());
        prop_assert_eq!(o.relevant_count(), labels.iter().filter(|&&l| l).count());
        for (i, &l) in labels.iter().enumerate() {
            prop_assert_eq!(o.label(i), l);
        }
    }
}
