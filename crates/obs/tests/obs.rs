//! Integration tests for the tsvr-obs probe layer.
//!
//! The registry and the runtime kill switch are process-global, so every
//! test that mutates them runs under one mutex; metric names are unique
//! per test so assertions never read another test's state.

use tsvr_obs::{bucket_bounds, bucket_index, BucketSnapshot, CounterSnapshot};
use tsvr_obs::{HistogramSnapshot, Snapshot, BUCKETS};

#[cfg(feature = "enabled")]
use std::sync::Mutex;

/// Serializes tests that touch the global registry or kill switch.
#[cfg(feature = "enabled")]
static GLOBAL: Mutex<()> = Mutex::new(());

#[cfg(feature = "enabled")]
fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn bucket_index_boundaries() {
    // Bucket 0 holds exactly 0; bucket k > 0 covers [2^(k-1), 2^k - 1].
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(7), 3);
    assert_eq!(bucket_index(8), 4);
    assert_eq!(bucket_index(1023), 10);
    assert_eq!(bucket_index(1024), 11);
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
}

#[test]
fn bucket_bounds_partition_u64() {
    // Bounds are contiguous, cover all of u64, and agree with the index
    // function at both edges of every bucket.
    let mut expected_lo = 0u64;
    for k in 0..BUCKETS {
        let (lo, hi) = bucket_bounds(k);
        assert_eq!(lo, expected_lo, "bucket {k} lower bound");
        assert!(hi >= lo);
        assert_eq!(bucket_index(lo), k, "lo of bucket {k} maps back");
        assert_eq!(bucket_index(hi), k, "hi of bucket {k} maps back");
        expected_lo = hi.wrapping_add(1);
    }
    assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
}

/// A snapshot with every field shape exercised (empty histogram, span
/// histogram, multi-bucket histogram, zero counter).
fn sample_snapshot() -> Snapshot {
    Snapshot {
        counters: vec![
            CounterSnapshot {
                name: "svm.kernel.evals".into(),
                value: 123_456,
            },
            CounterSnapshot {
                name: "vision.frames".into(),
                value: 0,
            },
        ],
        histograms: vec![
            HistogramSnapshot {
                name: "mil.round".into(),
                unit: "ns".into(),
                count: 4,
                sum: 1_000,
                min: 200,
                max: 350,
                buckets: vec![
                    BucketSnapshot {
                        lo: 128,
                        hi: 255,
                        count: 3,
                    },
                    BucketSnapshot {
                        lo: 256,
                        hi: 511,
                        count: 1,
                    },
                ],
            },
            HistogramSnapshot {
                name: "vision.blobs_per_frame".into(),
                unit: "count".into(),
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                buckets: vec![],
            },
        ],
    }
}

#[test]
fn snapshot_json_round_trips() {
    let snap = sample_snapshot();
    let text = snap.to_json();
    let back = Snapshot::from_json(&text).expect("round trip parse");
    assert_eq!(back, snap);
    // Serialization is deterministic.
    assert_eq!(back.to_json(), text);
}

#[test]
fn snapshot_rejects_foreign_documents() {
    assert!(Snapshot::from_json("{}").is_err(), "missing schema");
    assert!(
        Snapshot::from_json("{\"schema\": \"tsvr-obs/999\"}").is_err(),
        "wrong schema version"
    );
    assert!(Snapshot::from_json("not json at all").is_err());
    // An empty but well-formed snapshot parses.
    let empty = Snapshot::default();
    assert_eq!(Snapshot::from_json(&empty.to_json()).unwrap(), empty);
}

/// Tiny deterministic LCG so the corruption sweep needs no external
/// crates and reproduces bit-for-bit across runs.
fn lcg(state: &mut u64) -> usize {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 33) as usize
}

#[test]
fn parser_survives_corrupted_snapshots() {
    // A snapshot whose metric names force every string-parser path:
    // short escapes, \u escapes (control chars), and multi-byte UTF-8.
    let snap = Snapshot {
        counters: vec![
            CounterSnapshot {
                name: "quoted \"name\" with \\ and \n and \t".into(),
                value: 42,
            },
            CounterSnapshot {
                name: "unicode café 🚗 θ\u{0008}\u{000c}".into(),
                value: u64::MAX,
            },
        ],
        histograms: sample_snapshot().histograms,
    };
    let text = snap.to_json();
    assert_eq!(
        Snapshot::from_json(&text).expect("nasty names round trip"),
        snap
    );

    // Property 1: the parser returns Ok or Err — never panics — at
    // every truncation point, including cuts that land mid-escape or
    // mid-multi-byte character (lossy re-decode keeps the &str contract
    // while still ending input at an arbitrary byte).
    let bytes = text.as_bytes();
    for cut in 0..bytes.len() {
        let s = String::from_utf8_lossy(&bytes[..cut]);
        let _ = Snapshot::from_json(&s);
    }

    // Property 2: seeded random byte corruption (1–4 flips per case)
    // anywhere in the document never panics either.
    let mut state = 0x243f_6a88_85a3_08d3u64;
    for _ in 0..2000 {
        let mut mutated = bytes.to_vec();
        for _ in 0..(lcg(&mut state) % 4 + 1) {
            let i = lcg(&mut state) % mutated.len();
            mutated[i] = (lcg(&mut state) % 256) as u8;
        }
        let s = String::from_utf8_lossy(&mutated);
        let _ = Snapshot::from_json(&s);
    }
}

#[test]
fn histogram_snapshot_statistics() {
    let h = &sample_snapshot().histograms[0];
    assert_eq!(h.mean(), 250.0);
    // 4 samples: ranks 1-3 in [128,255], rank 4 in [256,511] (capped at max).
    assert_eq!(h.quantile(0.5), 255);
    assert_eq!(h.quantile(0.95), 350);
    let empty = &sample_snapshot().histograms[1];
    assert_eq!(empty.mean(), 0.0);
    assert_eq!(empty.quantile(0.5), 0);
}

#[test]
fn render_table_mentions_every_metric() {
    let table = sample_snapshot().render_table();
    assert!(table.contains("svm.kernel.evals"));
    assert!(table.contains("123456"));
    assert!(table.contains("mil.round"));
    assert!(table.contains("ns"));
    assert!(Snapshot::default()
        .render_table()
        .contains("(no metrics recorded)"));
}

#[cfg(feature = "enabled")]
mod enabled {
    use super::lock;
    use tsvr_obs::{set_enabled, snapshot};

    #[test]
    fn macros_register_and_accumulate() {
        let _g = lock();
        tsvr_obs::counter!("test.reg.counter").add(5);
        tsvr_obs::counter!("test.reg.counter").incr();
        tsvr_obs::histogram!("test.reg.hist").record(3);
        tsvr_obs::histogram!("test.reg.hist").record(300);
        {
            let _span = tsvr_obs::span!("test.reg.span");
            std::hint::black_box(0u64);
        }
        let snap = snapshot();
        let c = snap
            .counters
            .iter()
            .find(|c| c.name == "test.reg.counter")
            .expect("counter registered");
        assert_eq!(c.value, 6);
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.reg.hist")
            .expect("histogram registered");
        assert_eq!(h.unit, "count");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 303);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, 300);
        // Samples 3 and 300 land in buckets [2,3] and [256,511].
        assert!(h.buckets.iter().any(|b| (b.lo, b.hi) == (2, 3)));
        assert!(h.buckets.iter().any(|b| (b.lo, b.hi) == (256, 511)));
        let s = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.reg.span")
            .expect("span histogram registered");
        assert_eq!(s.unit, "ns");
        assert_eq!(s.count, 1);
    }

    #[test]
    fn kill_switch_pauses_probes() {
        let _g = lock();
        let c = tsvr_obs::counter!("test.kill.counter");
        let h = tsvr_obs::histogram!("test.kill.hist");
        c.incr();
        set_enabled(false);
        c.add(100);
        h.record(7);
        {
            let _span = tsvr_obs::span!("test.kill.span");
        }
        set_enabled(true);
        c.incr();
        assert_eq!(c.get(), 2, "adds while disabled must be dropped");
        assert_eq!(h.count(), 0);
        let snap = snapshot();
        let span_count = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.kill.span")
            .map(|h| h.count)
            .unwrap_or(0);
        assert_eq!(span_count, 0, "span started while disabled recorded");
    }

    #[test]
    fn counters_are_thread_safe() {
        let _g = lock();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let before = tsvr_obs::counter!("test.mt.counter").get();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    let c = tsvr_obs::counter!("test.mt.counter");
                    let h = tsvr_obs::histogram!("test.mt.hist");
                    for i in 0..PER_THREAD {
                        c.incr();
                        h.record(i % 17);
                    }
                });
            }
        });
        let c = tsvr_obs::counter!("test.mt.counter");
        assert_eq!(c.get() - before, THREADS as u64 * PER_THREAD);
        let h = tsvr_obs::histogram!("test.mt.hist");
        assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
        // Bucket totals are consistent with the sample count.
        let total: u64 = (0..tsvr_obs::BUCKETS).map(|k| h.bucket(k)).sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn reset_race_drops_inflight_span_samples() {
        let _g = lock();
        tsvr_obs::set_enabled(true);
        tsvr_obs::reset();
        // Deterministic interleaving: the span is live when reset()
        // runs, and drops only after it returned. Its sample must be
        // discarded — recording it would resurrect pre-reset timing
        // into the freshly zeroed histogram.
        let started = std::sync::Barrier::new(2);
        let was_reset = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _span = tsvr_obs::tspan!("test.resetrace.span");
                started.wait();
                was_reset.wait();
            });
            started.wait();
            tsvr_obs::reset();
            was_reset.wait();
        });
        let count = |snap: &tsvr_obs::Snapshot| {
            snap.histograms
                .iter()
                .find(|h| h.name == "test.resetrace.span")
                .map(|h| h.count)
                .unwrap_or(0)
        };
        assert_eq!(
            count(&snapshot()),
            0,
            "span straddling reset() leaked its sample"
        );
        assert!(
            tsvr_obs::trace::latest().is_none(),
            "trace straddling reset() was resurrected"
        );
        // A span entirely after the reset records normally.
        {
            let _span = tsvr_obs::tspan!("test.resetrace.span");
        }
        assert_eq!(count(&snapshot()), 1);

        // Concurrent hammer: resets racing span starts/drops must never
        // corrupt histogram state (count is the number of surviving
        // samples; min/max/sum stay internally consistent).
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let stop = &stop;
            for _ in 0..4 {
                scope.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let _span = tsvr_obs::span!("test.resetrace.hammer");
                        std::hint::black_box(0u64);
                    }
                });
            }
            for _ in 0..200 {
                tsvr_obs::reset();
                std::thread::yield_now();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        tsvr_obs::reset();
        let snap = snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.resetrace.hammer")
            .expect("hammer histogram registered");
        assert_eq!(h.count, 0, "final reset left samples behind");
        assert_eq!((h.sum, h.min, h.max), (0, 0, 0));
    }

    #[test]
    fn flight_recorder_wraparound_under_concurrent_writers() {
        // Private ring (not the global one), small enough to wrap many
        // times. Each writer's payload is self-describing, so a torn
        // event — fields from two different writes — is detectable.
        use tsvr_obs::trace::{Event, EventKind, FlightRecorder};
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 1_000;
        let ring = FlightRecorder::with_capacity(64);
        std::thread::scope(|scope| {
            for t in 0..WRITERS {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        ring.record(Event {
                            seq: 0,
                            kind: EventKind::Span,
                            trace: t + 1,
                            span: i + 1,
                            parent: 0,
                            name: format!("writer{t}").into(),
                            detail: format!("{}:{}", t + 1, i + 1).into(),
                            start_ns: (t + 1) * 1_000_000 + (i + 1),
                            dur_ns: i + 1,
                        });
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), WRITERS * PER_WRITER);
        let events = ring.events();
        assert!(events.len() <= 64);
        assert!(!events.is_empty());
        let mut last_span_per_trace = std::collections::HashMap::new();
        let mut prev_seq = None;
        for e in &events {
            // Ascending, unique sequence numbers.
            assert!(prev_seq.is_none_or(|p| p < e.seq));
            prev_seq = Some(e.seq);
            // Untorn: every field agrees with the writer/iteration that
            // produced it.
            assert_eq!(e.name, format!("writer{}", e.trace - 1), "torn event {e:?}");
            assert_eq!(e.detail, format!("{}:{}", e.trace, e.span), "torn event {e:?}");
            assert_eq!(e.start_ns, e.trace * 1_000_000 + e.span, "torn event {e:?}");
            assert_eq!(e.dur_ns, e.span, "torn event {e:?}");
            // Order within a trace: each writer recorded its spans in
            // ascending order, so surviving seqs must preserve it.
            if let Some(prev) = last_span_per_trace.insert(e.trace, e.span) {
                assert!(prev < e.span, "trace {} reordered", e.trace);
            }
        }
    }

    #[test]
    fn labeled_metrics_render_in_snapshots_with_bounded_cardinality() {
        let _g = lock();
        tsvr_obs::set_enabled(true);
        tsvr_obs::reset();
        tsvr_obs::counter_labeled("test.lbl.requests", "session=1").add(2);
        tsvr_obs::counter_labeled("test.lbl.requests", "session=2").incr();
        tsvr_obs::histogram_ns_labeled("test.lbl.latency", "op=page").record(1_000);
        let snap = snapshot();
        let value = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
        };
        assert_eq!(value("test.lbl.requests{session=1}"), Some(2));
        assert_eq!(value("test.lbl.requests{session=2}"), Some(1));
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.lbl.latency{op=page}")
            .expect("labeled histogram registered");
        assert_eq!((h.unit.as_str(), h.count), ("ns", 1));
        // Hostile cardinality collapses into the `other` label instead
        // of growing the registry without bound.
        for i in 0..200 {
            tsvr_obs::counter_labeled("test.lbl.flood", &format!("k={i}")).incr();
        }
        let snap = snapshot();
        let flood: Vec<_> = snap
            .counters
            .iter()
            .filter(|c| c.name.starts_with("test.lbl.flood{"))
            .collect();
        assert!(
            flood.len() <= 65,
            "label cardinality unbounded: {} labels",
            flood.len()
        );
        let other = value_of(&snap, "test.lbl.flood{other}");
        assert!(other >= 1, "overflow labels must land in {{other}}");
    }

    fn value_of(snap: &tsvr_obs::Snapshot, name: &str) -> u64 {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    #[test]
    fn tspan_builds_hierarchical_traces_across_threads() {
        let _g = lock();
        tsvr_obs::set_enabled(true);
        tsvr_obs::reset();
        tsvr_obs::trace::set_slow_threshold_ns(0);
        {
            let root = tsvr_obs::tspan!("test.trace.root");
            let ctx = root.ctx();
            assert!(ctx.is_some());
            {
                let _child = tsvr_obs::tspan!("test.trace.child");
                tsvr_obs::trace::incident("test.trace.boom", "injected");
            }
            // Cross-thread propagation: a worker adopts the submitting
            // thread's context and its span joins the same trace.
            std::thread::scope(|scope| {
                let ctx = tsvr_obs::trace::current();
                scope.spawn(move || {
                    let _adopted = tsvr_obs::trace::adopt(ctx);
                    let _span = tsvr_obs::tspan!("test.trace.worker");
                });
            });
        }
        tsvr_obs::trace::set_slow_threshold_ns(u64::MAX);
        let t = tsvr_obs::trace::latest().expect("root span published a trace");
        assert_eq!(t.name, "test.trace.root");
        assert_eq!(tsvr_obs::trace::finished(t.trace), Some(t.clone()));
        let names: Vec<&str> = t.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(
            names,
            vec![
                "test.trace.boom",
                "test.trace.child",
                "test.trace.worker",
                "test.trace.root"
            ],
            "incidents fire immediately, spans at completion, root last"
        );
        let root_ev = &t.events[3];
        assert_eq!(root_ev.parent, 0);
        for e in &t.events[..3] {
            assert_eq!(e.trace, root_ev.trace);
        }
        assert_eq!(t.events[1].parent, root_ev.span, "child hangs off root");
        assert_eq!(t.events[2].parent, root_ev.span, "worker hangs off root");
        assert_eq!(
            t.events[0].parent, t.events[1].span,
            "incident hangs off the span live when it fired"
        );
        // Root exceeded the zero threshold, so the slowlog kept it.
        assert!(tsvr_obs::trace::slowlog().iter().any(|s| s.trace == t.trace));
        // The flight recorder holds the same events.
        let recorded = tsvr_obs::trace::recorder_events();
        assert!(recorded.iter().any(|e| e.name == "test.trace.boom"));
        // The labeled incident counter ticked.
        assert_eq!(
            value_of(&snapshot(), "obs.incident{test.trace.boom}"),
            1
        );
    }

    #[test]
    fn incident_dump_writes_parseable_flight_recording() {
        let _g = lock();
        tsvr_obs::set_enabled(true);
        tsvr_obs::reset();
        let mut path = std::env::temp_dir();
        path.push(format!("tsvr-flight-test-{}.ndjson", std::process::id()));
        tsvr_obs::trace::set_dump_path(Some(path.clone()));
        {
            let _root = tsvr_obs::tspan!("test.dump.root");
            tsvr_obs::trace::incident_dump("test.dump.quarantine", "clip 7 torn");
        }
        tsvr_obs::trace::set_dump_path(None);
        let text = std::fs::read_to_string(&path).expect("dump file written");
        let mut lines = text.lines();
        let header = tsvr_obs::json::Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            header.get("schema").and_then(tsvr_obs::json::Json::as_str),
            Some("tsvr-flight/1")
        );
        assert_eq!(
            header.get("reason").and_then(tsvr_obs::json::Json::as_str),
            Some("test.dump.quarantine")
        );
        // The failing trace is named in the header.
        let named = header.get("trace").and_then(tsvr_obs::json::Json::as_u64);
        assert!(named.is_some_and(|t| t > 0), "dump header names no trace");
        let events: Vec<_> = lines
            .map(|l| tsvr_obs::trace::Event::parse_line(l).expect("event line parses"))
            .collect();
        assert!(events.iter().any(|e| e.name == "test.dump.quarantine"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_snapshot_emits_parseable_json() {
        let _g = lock();
        tsvr_obs::counter!("test.file.counter").incr();
        let mut path = std::env::temp_dir();
        path.push(format!("tsvr-obs-test-{}.json", std::process::id()));
        tsvr_obs::write_snapshot(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let snap = tsvr_obs::Snapshot::from_json(&text).unwrap();
        assert!(snap.counters.iter().any(|c| c.name == "test.file.counter"));
        let _ = std::fs::remove_file(&path);
    }
}

#[cfg(not(feature = "enabled"))]
mod disabled {
    #[test]
    fn probes_compile_to_inert_stubs() {
        assert!(!tsvr_obs::is_enabled());
        let c = tsvr_obs::counter!("noop.counter");
        c.add(10);
        c.incr();
        assert_eq!(c.get(), 0);
        let h = tsvr_obs::histogram!("noop.hist");
        h.record(42);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        {
            let _span = tsvr_obs::span!("noop.span");
        }
        tsvr_obs::set_enabled(true); // still inert
        assert!(!tsvr_obs::is_enabled());
        tsvr_obs::reset();
        let snap = tsvr_obs::snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
