//! Zero-dependency metrics and tracing for the tsvr retrieval pipeline.
//!
//! The crate provides three probe primitives, all living in a global
//! registry keyed by hierarchical dotted names (`vision.segment`,
//! `svm.train`, `viddb.append`, ...):
//!
//! * [`Counter`] — a monotonically increasing atomic counter, obtained
//!   with the [`counter!`] macro.
//! * [`Histogram`] — a log2-bucketed histogram of `u64` samples,
//!   obtained with the [`histogram!`] macro.
//! * [`Span`] — an RAII timer on the monotonic clock; [`span!`] starts
//!   one and its `Drop` records the elapsed nanoseconds into a
//!   nanosecond-unit histogram under the span's name.
//!
//! Probe macros cache the registry lookup per call site, so a hot-path
//! probe costs one atomic load plus one relaxed `fetch_add`.
//!
//! Two switches turn probes off:
//!
//! * Compile time: building without the `enabled` cargo feature turns
//!   every probe into an inlined no-op (zero-sized guards, no clock
//!   reads). Downstream crates expose this as their `obs` feature.
//! * Run time: [`set_enabled`] flips a process-global kill switch;
//!   disabled probes skip the clock read and the atomic update.
//!
//! State is exported through [`snapshot`], which yields a [`Snapshot`]
//! that renders as a human-readable table or a stable JSON document
//! (the same flat-object convention the repo's `BENCH_*.json` files
//! use).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod metrics;
mod snapshot;
pub mod trace;

#[cfg(feature = "enabled")]
mod registry;

pub use metrics::{bucket_bounds, bucket_index, Counter, Histogram, Span, BUCKETS};
pub use snapshot::{BucketSnapshot, CounterSnapshot, HistogramSnapshot, Snapshot};

#[cfg(feature = "enabled")]
pub use registry::{
    counter, counter_labeled, histogram, histogram_ns, histogram_ns_labeled, is_enabled, reset,
    set_enabled, snapshot,
};

#[cfg(feature = "enabled")]
pub(crate) use registry::epoch as registry_epoch;

#[cfg(not(feature = "enabled"))]
mod noop_api {
    use crate::{Counter, Histogram, Snapshot};

    /// No-op stand-in returned by [`counter!`](crate::counter!) when
    /// probes are compiled out.
    #[doc(hidden)]
    pub static NOOP_COUNTER: Counter = Counter::noop();
    /// No-op stand-in returned by [`histogram!`](crate::histogram!)
    /// when probes are compiled out.
    #[doc(hidden)]
    pub static NOOP_HISTOGRAM: Histogram = Histogram::noop();

    /// Look up or create the counter `name` (no-op build: shared stub).
    #[inline(always)]
    pub fn counter(_name: &'static str) -> &'static Counter {
        &NOOP_COUNTER
    }

    /// Look up or create the histogram `name` (no-op build: shared stub).
    #[inline(always)]
    pub fn histogram(_name: &'static str) -> &'static Histogram {
        &NOOP_HISTOGRAM
    }

    /// Look up or create the nanosecond histogram `name` (no-op build:
    /// shared stub).
    #[inline(always)]
    pub fn histogram_ns(_name: &'static str) -> &'static Histogram {
        &NOOP_HISTOGRAM
    }

    /// Look up or create the labeled counter (no-op build: shared stub).
    #[inline(always)]
    pub fn counter_labeled(_name: &'static str, _label: &str) -> &'static Counter {
        &NOOP_COUNTER
    }

    /// Look up or create the labeled nanosecond histogram (no-op build:
    /// shared stub).
    #[inline(always)]
    pub fn histogram_ns_labeled(_name: &'static str, _label: &str) -> &'static Histogram {
        &NOOP_HISTOGRAM
    }

    /// Runtime kill switch; probes are compiled out, so always `false`.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    /// Runtime kill switch setter; nothing to switch in a no-op build.
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    /// Zero all registered metrics; nothing registered in a no-op build.
    #[inline(always)]
    pub fn reset() {}

    /// Capture the registry state; always empty in a no-op build.
    #[inline(always)]
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop_api::*;

/// Write the current [`snapshot`] as JSON to `path`.
///
/// In a no-op build this still writes a valid (empty) snapshot so
/// tooling that expects the file keeps working.
pub fn write_snapshot(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, snapshot().to_json())
}

/// Look up (and cache per call site) the counter named `$name`.
///
/// Returns `&'static Counter`. `$name` must be a `&'static str`.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __TSVR_OBS_SITE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__TSVR_OBS_SITE.get_or_init(|| $crate::counter($name))
    }};
}

/// Look up (and cache per call site) the counter named `$name`.
///
/// Probes are compiled out: expands to a shared no-op counter.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        let _ = $name;
        &$crate::NOOP_COUNTER
    }};
}

/// Look up (and cache per call site) the histogram named `$name`.
///
/// Returns `&'static Histogram`. `$name` must be a `&'static str`.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __TSVR_OBS_SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__TSVR_OBS_SITE.get_or_init(|| $crate::histogram($name))
    }};
}

/// Look up (and cache per call site) the histogram named `$name`.
///
/// Probes are compiled out: expands to a shared no-op histogram.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        let _ = $name;
        &$crate::NOOP_HISTOGRAM
    }};
}

/// Start an RAII span timer named `$name`.
///
/// Bind the result (`let _span = span!("x.y");`) — dropping it records
/// the elapsed wall time, in nanoseconds, into the histogram `$name`.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __TSVR_OBS_SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::Span::start(*__TSVR_OBS_SITE.get_or_init(|| $crate::histogram_ns($name)))
    }};
}

/// Start an RAII span timer named `$name`.
///
/// Probes are compiled out: expands to a zero-sized guard and never
/// reads the clock.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        let _ = $name;
        $crate::Span::noop()
    }};
}

/// Start a **traced** RAII span named `$name`: times the region into
/// the histogram `$name` exactly like [`span!`], and additionally
/// records a span event into the current request trace (becoming the
/// trace root when no span is live on this thread). See
/// [`trace`](crate::trace) for the data model.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! tspan {
    ($name:expr) => {{
        static __TSVR_OBS_SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::trace::TracedSpan::start(
            $name,
            *__TSVR_OBS_SITE.get_or_init(|| $crate::histogram_ns($name)),
        )
    }};
}

/// Start a traced RAII span named `$name`.
///
/// Probes are compiled out: expands to a zero-sized guard and never
/// reads the clock.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! tspan {
    ($name:expr) => {{
        let _ = $name;
        $crate::trace::TracedSpan::noop()
    }};
}
