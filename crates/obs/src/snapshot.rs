//! Point-in-time snapshots of the registry, with JSON and table export.
//!
//! JSON schema (stable; the `tsvr stats` subcommand and the
//! `BENCH_*.json` tooling both parse it):
//!
//! ```json
//! {
//!   "schema": "tsvr-obs/1",
//!   "counters": [{"name": "svm.kernel.evals", "value": 123}],
//!   "histograms": [{
//!     "name": "mil.round", "unit": "ns",
//!     "count": 4, "sum": 1000, "min": 200, "max": 350,
//!     "buckets": [{"lo": 128, "hi": 255, "count": 3},
//!                 {"lo": 256, "hi": 511, "count": 1}]
//!   }]
//! }
//! ```
//!
//! `unit` is `"ns"` for span histograms and `"count"` otherwise; only
//! non-empty buckets are listed, each with its inclusive value range.

use std::fmt::Write as _;

use crate::json::{Json, ParseError};

/// Identifies the snapshot JSON schema version.
pub const SCHEMA: &str = "tsvr-obs/1";

/// One counter's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered dotted name.
    pub name: String,
    /// Counter value at capture time.
    pub value: u64,
}

/// One non-empty histogram bucket: `count` samples in `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketSnapshot {
    /// Inclusive lower bound of the bucket's value range.
    pub lo: u64,
    /// Inclusive upper bound of the bucket's value range.
    pub hi: u64,
    /// Samples that landed in this bucket.
    pub count: u64,
}

/// One histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered dotted name.
    pub name: String,
    /// `"ns"` for span histograms, `"count"` otherwise.
    pub unit: String,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets in ascending value order.
    pub buckets: Vec<BucketSnapshot>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the q-th sample (an overestimate of at most
    /// one bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.hi.min(self.max);
            }
        }
        self.max
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All counters, in name order.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms (including span timers), in name order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Serialize to the stable JSON schema described in the module docs.
    pub fn to_json(&self) -> String {
        let mut out = self.to_json_value().to_string();
        out.push('\n');
        out
    }

    /// The same document as [`Snapshot::to_json`], as a [`Json`] value —
    /// for embedding in a larger document (the serve protocol's `stats`
    /// response).
    pub fn to_json_value(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(c.name.clone())),
                    ("value".into(), Json::Num(c.value as f64)),
                ])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|b| {
                        Json::Obj(vec![
                            ("lo".into(), Json::Num(b.lo as f64)),
                            ("hi".into(), Json::Num(b.hi as f64)),
                            ("count".into(), Json::Num(b.count as f64)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".into(), Json::Str(h.name.clone())),
                    ("unit".into(), Json::Str(h.unit.clone())),
                    ("count".into(), Json::Num(h.count as f64)),
                    ("sum".into(), Json::Num(h.sum as f64)),
                    ("min".into(), Json::Num(h.min as f64)),
                    ("max".into(), Json::Num(h.max as f64)),
                    ("buckets".into(), Json::Arr(buckets)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("counters".into(), Json::Arr(counters)),
            ("histograms".into(), Json::Arr(histograms)),
        ])
    }

    /// Parse a snapshot previously produced by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, ParseError> {
        let doc = Json::parse(text)?;
        Snapshot::from_json_value(&doc)
    }

    /// Inverse of [`Snapshot::to_json_value`].
    pub fn from_json_value(doc: &Json) -> Result<Snapshot, ParseError> {
        let bad = |message: &str| ParseError {
            message: message.to_string(),
            offset: 0,
        };
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(bad(&format!("unsupported schema '{other}'"))),
            None => return Err(bad("missing 'schema' field")),
        }
        let field = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(&format!("missing or invalid '{key}'")))
        };
        let mut counters = Vec::new();
        for c in doc.get("counters").and_then(Json::as_arr).unwrap_or(&[]) {
            counters.push(CounterSnapshot {
                name: c
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("counter missing 'name'"))?
                    .to_string(),
                value: field(c, "value")?,
            });
        }
        let mut histograms = Vec::new();
        for h in doc.get("histograms").and_then(Json::as_arr).unwrap_or(&[]) {
            let mut buckets = Vec::new();
            for b in h.get("buckets").and_then(Json::as_arr).unwrap_or(&[]) {
                buckets.push(BucketSnapshot {
                    lo: field(b, "lo")?,
                    hi: field(b, "hi")?,
                    count: field(b, "count")?,
                });
            }
            histograms.push(HistogramSnapshot {
                name: h
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("histogram missing 'name'"))?
                    .to_string(),
                unit: h.get("unit").and_then(Json::as_str).unwrap_or("count").to_string(),
                count: field(h, "count")?,
                sum: field(h, "sum")?,
                min: field(h, "min")?,
                max: field(h, "max")?,
                buckets,
            });
        }
        Ok(Snapshot {
            counters,
            histograms,
        })
    }

    /// Render a human-readable table (what `tsvr stats` prints).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.counters.is_empty() && self.histograms.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<40} {:>14}", "COUNTER", "VALUE");
            for c in &self.counters {
                let _ = writeln!(out, "{:<40} {:>14}", c.name, c.value);
            }
        }
        if !self.histograms.is_empty() {
            if !self.counters.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "{:<28} {:>6} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "SPAN/HISTOGRAM", "UNIT", "COUNT", "MEAN", "P50", "P95", "MAX"
            );
            for h in &self.histograms {
                let ns = h.unit == "ns";
                let _ = writeln!(
                    out,
                    "{:<28} {:>6} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    h.name,
                    h.unit,
                    h.count,
                    fmt_value(h.mean(), ns),
                    fmt_value(h.quantile(0.50) as f64, ns),
                    fmt_value(h.quantile(0.95) as f64, ns),
                    fmt_value(h.max as f64, ns),
                );
            }
        }
        out
    }
}

/// Format a value for the table; nanosecond values get a time suffix.
fn fmt_value(v: f64, nanos: bool) -> String {
    if !nanos {
        return if v.fract() == 0.0 {
            format!("{}", v as u64)
        } else {
            format!("{v:.1}")
        };
    }
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{}ns", v as u64)
    }
}
