//! A deliberately small JSON reader/writer (no external dependencies).
//!
//! Covers exactly what the snapshot format and the `BENCH_*.json`
//! convention need: objects, arrays, strings, finite numbers, booleans,
//! and null. Numbers are held as `f64`; every integer the pipeline
//! emits fits losslessly below 2^53.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`]: a message and the byte offset at
/// which parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parse a JSON document (must contain exactly one value).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Field lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Compact (no whitespace) JSON serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Serialize an `f64`, writing integral values below 2^53 without a
/// decimal point so `u64` metrics round-trip textually.
fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-scan from the byte position to keep UTF-8 intact.
                    // A truncated multi-byte sequence at end-of-input must
                    // surface as a parse error, never a panic.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("truncated string"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}
