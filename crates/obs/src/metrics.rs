//! Probe primitives: counters, log2-bucketed histograms, span timers.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Number of histogram buckets. Bucket `k > 0` covers the value range
/// `[2^(k-1), 2^k - 1]`; bucket 0 holds exactly the value `0`.
pub const BUCKETS: usize = 65;

/// Bucket index for a sample value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive `[lo, hi]` value range covered by bucket `k`.
pub fn bucket_bounds(k: usize) -> (u64, u64) {
    match k {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (k - 1), (1 << k) - 1),
    }
}

/// A monotonically increasing atomic counter.
///
/// Obtain one with the [`counter!`](crate::counter!) macro; all methods
/// are no-ops when probes are compiled out.
pub struct Counter {
    #[cfg(feature = "enabled")]
    value: AtomicU64,
}

#[cfg(feature = "enabled")]
impl Counter {
    pub(crate) fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add `n` to the counter (skipped while the runtime kill switch is off).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current counter value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(not(feature = "enabled"))]
impl Counter {
    pub(crate) const fn noop() -> Self {
        Counter {}
    }

    /// Add `n` to the counter (probes compiled out: does nothing).
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Current counter value (probes compiled out: always 0).
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

impl Counter {
    /// Increment the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A log2-bucketed histogram of `u64` samples with exact count, sum,
/// min, and max.
///
/// Obtain one with the [`histogram!`](crate::histogram!) macro (or
/// implicitly via [`span!`](crate::span!), which records nanoseconds).
pub struct Histogram {
    #[cfg(feature = "enabled")]
    buckets: [AtomicU64; BUCKETS],
    #[cfg(feature = "enabled")]
    count: AtomicU64,
    #[cfg(feature = "enabled")]
    sum: AtomicU64,
    #[cfg(feature = "enabled")]
    min: AtomicU64,
    #[cfg(feature = "enabled")]
    max: AtomicU64,
}

#[cfg(feature = "enabled")]
impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample (skipped while the runtime kill switch is off).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::is_enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Sample count in bucket `k`.
    pub fn bucket(&self, k: usize) -> u64 {
        self.buckets[k].load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(not(feature = "enabled"))]
impl Histogram {
    pub(crate) const fn noop() -> Self {
        Histogram {}
    }

    /// Record one sample (probes compiled out: does nothing).
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Number of recorded samples (probes compiled out: always 0).
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// Sum of recorded samples (probes compiled out: always 0).
    #[inline(always)]
    pub fn sum(&self) -> u64 {
        0
    }

    /// Smallest recorded sample (probes compiled out: always 0).
    #[inline(always)]
    pub fn min(&self) -> u64 {
        0
    }

    /// Largest recorded sample (probes compiled out: always 0).
    #[inline(always)]
    pub fn max(&self) -> u64 {
        0
    }

    /// Sample count in bucket `k` (probes compiled out: always 0).
    #[inline(always)]
    pub fn bucket(&self, _k: usize) -> u64 {
        0
    }
}

impl Histogram {
    /// Record a duration as whole nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// RAII span timer: started by [`span!`](crate::span!), records the
/// elapsed wall-clock nanoseconds into its histogram on drop.
#[must_use = "a span records its duration when dropped; bind it with `let _span = ...`"]
pub struct Span {
    #[cfg(feature = "enabled")]
    inner: Option<(&'static Histogram, Instant, u64)>,
}

#[cfg(feature = "enabled")]
impl Span {
    /// Start a span recording into `h` (kill switch off: inert guard).
    ///
    /// The guard remembers the registry's reset epoch: a span whose
    /// lifetime straddles a [`reset`](crate::reset) drops its sample
    /// instead of writing a pre-reset duration into the zeroed
    /// histogram.
    #[doc(hidden)]
    #[inline]
    pub fn start(h: &'static Histogram) -> Span {
        Span {
            inner: if crate::is_enabled() {
                Some((h, Instant::now(), crate::registry_epoch()))
            } else {
                None
            },
        }
    }
}

#[cfg(feature = "enabled")]
impl Drop for Span {
    fn drop(&mut self) {
        if let Some((h, t0, epoch)) = self.inner.take() {
            if crate::registry_epoch() == epoch {
                h.record_duration(t0.elapsed());
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
impl Span {
    /// Zero-sized inert guard (probes compiled out).
    #[doc(hidden)]
    #[inline(always)]
    pub const fn noop() -> Span {
        Span {}
    }
}
