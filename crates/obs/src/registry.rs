//! Process-global metric registry (only compiled with `enabled`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::metrics::{bucket_bounds, Counter, Histogram, BUCKETS};
use crate::snapshot::{BucketSnapshot, CounterSnapshot, HistogramSnapshot, Snapshot};

/// Runtime kill switch; probes check it before touching the clock or
/// any atomic. On by default.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Bumped by every [`reset`]. Span timers capture it at start and drop
/// their sample if it moved: a span completing across a reset must not
/// resurrect pre-reset state into the freshly zeroed histograms.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Current reset epoch (see [`EPOCH`]).
#[inline]
pub(crate) fn epoch() -> u64 {
    EPOCH.load(Ordering::Relaxed)
}

/// Distinct labels registered per metric name before further labels
/// collapse into `other` (bounds registry growth under hostile or buggy
/// label cardinality).
const MAX_LABELS_PER_NAME: usize = 64;

/// Unit attached to a histogram at registration time.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Unit {
    Count,
    Nanos,
}

impl Unit {
    fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Nanos => "ns",
        }
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, (Unit, &'static Histogram)>>,
    /// Labeled variants, keyed `(name, label)`. Labels are runtime
    /// strings (session ids, stage names), so these live in their own
    /// maps rather than widening the `&'static str` fast path.
    labeled_counters: Mutex<LabeledMap<&'static Counter>>,
    labeled_histograms: Mutex<LabeledMap<(Unit, &'static Histogram)>>,
}

/// Metrics with a label dimension, keyed `(name, label)`.
type LabeledMap<V> = BTreeMap<(&'static str, String), V>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        labeled_counters: Mutex::new(BTreeMap::new()),
        labeled_histograms: Mutex::new(BTreeMap::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Flip the runtime kill switch. While off, every probe is inert (no
/// clock reads, no atomic updates); already-recorded state is kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether probes are currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Look up or create the counter registered under `name`.
///
/// Registered metrics live for the rest of the process (their storage
/// is leaked once, on first use).
pub fn counter(name: &'static str) -> &'static Counter {
    lock(&registry().counters)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Look up or create the histogram registered under `name` with the
/// plain `count` unit.
pub fn histogram(name: &'static str) -> &'static Histogram {
    histogram_with_unit(name, Unit::Count)
}

/// Look up or create the histogram registered under `name` with the
/// nanosecond unit (used by span timers).
pub fn histogram_ns(name: &'static str) -> &'static Histogram {
    histogram_with_unit(name, Unit::Nanos)
}

fn histogram_with_unit(name: &'static str, unit: Unit) -> &'static Histogram {
    lock(&registry().histograms)
        .entry(name)
        .or_insert_with(|| (unit, Box::leak(Box::new(Histogram::new()))))
        .1
}

/// The label a new registration lands under: the requested one, or
/// `other` once the name already carries [`MAX_LABELS_PER_NAME`] labels.
fn admit_label<V>(
    map: &BTreeMap<(&'static str, String), V>,
    name: &'static str,
    label: &str,
) -> (&'static str, String) {
    let registered = map
        .range((name, String::new())..)
        .take_while(|((n, _), _)| *n == name)
        .count();
    if registered >= MAX_LABELS_PER_NAME {
        (name, "other".to_string())
    } else {
        (name, label.to_string())
    }
}

/// Look up or create the counter registered under `name` with a label
/// dimension (rendered `name{label}` in snapshots). Label cardinality
/// per name is capped; overflow collapses into the `other` label.
pub fn counter_labeled(name: &'static str, label: &str) -> &'static Counter {
    let mut map = lock(&registry().labeled_counters);
    if let Some(c) = map.get(&(name, label.to_string())) {
        return c;
    }
    let key = admit_label(&map, name, label);
    map.entry(key)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Look up or create the nanosecond histogram registered under `name`
/// with a label dimension (rendered `name{label}` in snapshots). Same
/// cardinality cap as [`counter_labeled`].
pub fn histogram_ns_labeled(name: &'static str, label: &str) -> &'static Histogram {
    let mut map = lock(&registry().labeled_histograms);
    if let Some(&(_, h)) = map.get(&(name, label.to_string())) {
        return h;
    }
    let key = admit_label(&map, name, label);
    map.entry(key)
        .or_insert_with(|| (Unit::Nanos, Box::leak(Box::new(Histogram::new()))))
        .1
}

/// Zero every registered counter and histogram (the registry keeps its
/// entries) and forget all tracing state. Mainly for tests and
/// benchmarks.
///
/// The epoch bump comes first: any span already running when `reset`
/// is called sees a changed epoch at drop time and discards its sample
/// instead of writing pre-reset timing into the zeroed histograms.
pub fn reset() {
    EPOCH.fetch_add(1, Ordering::Relaxed);
    for c in lock(&registry().counters).values() {
        c.reset();
    }
    for (_, h) in lock(&registry().histograms).values() {
        h.reset();
    }
    for c in lock(&registry().labeled_counters).values() {
        c.reset();
    }
    for (_, h) in lock(&registry().labeled_histograms).values() {
        h.reset();
    }
    crate::trace::clear_all();
}

fn hist_snapshot(name: String, unit: Unit, h: &Histogram) -> HistogramSnapshot {
    let buckets = (0..BUCKETS)
        .filter_map(|k| {
            let n = h.bucket(k);
            (n > 0).then(|| {
                let (lo, hi) = bucket_bounds(k);
                BucketSnapshot { lo, hi, count: n }
            })
        })
        .collect();
    HistogramSnapshot {
        name,
        unit: unit.as_str().to_string(),
        count: h.count(),
        sum: h.sum(),
        min: h.min(),
        max: h.max(),
        buckets,
    }
}

/// Capture a point-in-time copy of every registered metric. Labeled
/// metrics appear alongside plain ones as `name{label}`; everything is
/// in name order.
pub fn snapshot() -> Snapshot {
    let mut counters: Vec<CounterSnapshot> = lock(&registry().counters)
        .iter()
        .map(|(&name, c)| CounterSnapshot {
            name: name.to_string(),
            value: c.get(),
        })
        .collect();
    counters.extend(
        lock(&registry().labeled_counters)
            .iter()
            .map(|((name, label), c)| CounterSnapshot {
                name: format!("{name}{{{label}}}"),
                value: c.get(),
            }),
    );
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    let mut histograms: Vec<HistogramSnapshot> = lock(&registry().histograms)
        .iter()
        .map(|(&name, &(unit, h))| hist_snapshot(name.to_string(), unit, h))
        .collect();
    histograms.extend(
        lock(&registry().labeled_histograms)
            .iter()
            .map(|((name, label), &(unit, h))| {
                hist_snapshot(format!("{name}{{{label}}}"), unit, h)
            }),
    );
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    Snapshot {
        counters,
        histograms,
    }
}
