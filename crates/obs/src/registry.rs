//! Process-global metric registry (only compiled with `enabled`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::metrics::{bucket_bounds, Counter, Histogram, BUCKETS};
use crate::snapshot::{BucketSnapshot, CounterSnapshot, HistogramSnapshot, Snapshot};

/// Runtime kill switch; probes check it before touching the clock or
/// any atomic. On by default.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Unit attached to a histogram at registration time.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Unit {
    Count,
    Nanos,
}

impl Unit {
    fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Nanos => "ns",
        }
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, (Unit, &'static Histogram)>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Flip the runtime kill switch. While off, every probe is inert (no
/// clock reads, no atomic updates); already-recorded state is kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether probes are currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Look up or create the counter registered under `name`.
///
/// Registered metrics live for the rest of the process (their storage
/// is leaked once, on first use).
pub fn counter(name: &'static str) -> &'static Counter {
    lock(&registry().counters)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Look up or create the histogram registered under `name` with the
/// plain `count` unit.
pub fn histogram(name: &'static str) -> &'static Histogram {
    histogram_with_unit(name, Unit::Count)
}

/// Look up or create the histogram registered under `name` with the
/// nanosecond unit (used by span timers).
pub fn histogram_ns(name: &'static str) -> &'static Histogram {
    histogram_with_unit(name, Unit::Nanos)
}

fn histogram_with_unit(name: &'static str, unit: Unit) -> &'static Histogram {
    lock(&registry().histograms)
        .entry(name)
        .or_insert_with(|| (unit, Box::leak(Box::new(Histogram::new()))))
        .1
}

/// Zero every registered counter and histogram (the registry keeps its
/// entries). Mainly for tests and benchmarks.
pub fn reset() {
    for c in lock(&registry().counters).values() {
        c.reset();
    }
    for (_, h) in lock(&registry().histograms).values() {
        h.reset();
    }
}

/// Capture a point-in-time copy of every registered metric.
pub fn snapshot() -> Snapshot {
    let counters = lock(&registry().counters)
        .iter()
        .map(|(&name, c)| CounterSnapshot {
            name: name.to_string(),
            value: c.get(),
        })
        .collect();
    let histograms = lock(&registry().histograms)
        .iter()
        .map(|(&name, &(unit, h))| {
            let buckets = (0..BUCKETS)
                .filter_map(|k| {
                    let n = h.bucket(k);
                    (n > 0).then(|| {
                        let (lo, hi) = bucket_bounds(k);
                        BucketSnapshot { lo, hi, count: n }
                    })
                })
                .collect();
            HistogramSnapshot {
                name: name.to_string(),
                unit: unit.as_str().to_string(),
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                buckets,
            }
        })
        .collect();
    Snapshot {
        counters,
        histograms,
    }
}
