//! Request-scoped tracing: hierarchical spans, a bounded flight
//! recorder, and a slowlog of completed traces.
//!
//! ## Data model
//!
//! A **trace** is one request's tree of spans. Every [`tspan!`] guard
//! carries a [`TraceCtx`] — a process-unique trace id plus its own span
//! id — propagated through a thread-local; a guard started while another
//! is live becomes its child (parent span id recorded), and the guard
//! started with no context becomes the trace's **root**. Crossing a
//! thread boundary is explicit: capture [`current`] on the submitting
//! thread and [`adopt`] it on the worker (the `tsvr-par` pool does this
//! for every chunk).
//!
//! Spans emit one [`Event`] when they **end**; incident paths (retries,
//! rollbacks, quarantines, sheds) emit point-in-time [`Event`]s via
//! [`incident`]. Every event lands in two places:
//!
//! * the trace's own buffer, published as a [`FinishedTrace`] when the
//!   root span drops — kept in a bounded recent list, and copied into
//!   the **slowlog** when the root exceeded the configured threshold;
//! * the process-global [`FlightRecorder`] — a fixed-size ring that
//!   overwrites its oldest slot on wrap, cheap enough to leave on in
//!   production, and dumped to disk (NDJSON) on crash/quarantine paths.
//!
//! All of this compiles to no-ops without the `enabled` feature; the
//! data types themselves (events, traces, the ring) stay available so
//! transports can decode peers' traces regardless of their own build.
//!
//! [`tspan!`]: crate::tspan!

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// The identity a span propagates: which trace it belongs to and which
/// span id children should record as their parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Process-unique trace id (never 0).
    pub trace: u64,
    /// The current span's id within the trace (never 0).
    pub span: u64,
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span ended; `dur_ns` holds its elapsed time.
    Span,
    /// A point-in-time incident (retry exhausted, rollback, quarantine,
    /// shed, failed checkpoint, ...); `detail` holds the specifics.
    Incident,
}

impl EventKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Incident => "incident",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    pub fn from_wire(s: &str) -> Option<EventKind> {
        match s {
            "span" => Some(EventKind::Span),
            "incident" => Some(EventKind::Incident),
            _ => None,
        }
    }
}

/// One tracing event: a completed span or an incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global flight-recorder sequence number (assigned at record time;
    /// 0 for events that never went through a recorder).
    pub seq: u64,
    /// Span end or incident.
    pub kind: EventKind,
    /// Owning trace id; 0 for incidents raised outside any trace.
    pub trace: u64,
    /// This event's span id.
    pub span: u64,
    /// Parent span id; 0 for a root span or a parentless incident.
    pub parent: u64,
    /// Probe name (`serve.latency.page`, `viddb.quarantine`, ...).
    /// `Cow` keeps the probe hot path allocation-free: live spans
    /// borrow their `&'static` name; decoded wire events own theirs.
    pub name: Cow<'static, str>,
    /// Incident specifics; empty for plain spans.
    pub detail: Cow<'static, str>,
    /// Start time, nanoseconds since process start.
    pub start_ns: u64,
    /// Elapsed nanoseconds (0 for incidents).
    pub dur_ns: u64,
}

fn jnum(n: u64) -> Json {
    Json::Num(n as f64)
}

fn jfield(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("event missing or non-integer field {key:?}"))
}

impl Event {
    /// Encode as a JSON value (the wire and dump-file format).
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("seq".into(), jnum(self.seq)),
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            ("trace".into(), jnum(self.trace)),
            ("span".into(), jnum(self.span)),
            ("parent".into(), jnum(self.parent)),
            ("name".into(), Json::Str(self.name.to_string())),
            ("detail".into(), Json::Str(self.detail.to_string())),
            ("start_ns".into(), jnum(self.start_ns)),
            ("dur_ns".into(), jnum(self.dur_ns)),
        ])
    }

    /// Decode a value produced by [`Event::to_json_value`].
    pub fn from_json_value(v: &Json) -> Result<Event, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("event missing string field \"kind\"")?;
        let kind =
            EventKind::from_wire(kind).ok_or_else(|| format!("unknown event kind {kind:?}"))?;
        Ok(Event {
            seq: jfield(v, "seq")?,
            kind,
            trace: jfield(v, "trace")?,
            span: jfield(v, "span")?,
            parent: jfield(v, "parent")?,
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("event missing string field \"name\"")?
                .to_string()
                .into(),
            detail: v
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string()
                .into(),
            start_ns: jfield(v, "start_ns")?,
            dur_ns: jfield(v, "dur_ns")?,
        })
    }

    /// Encode as one NDJSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Decode one NDJSON line.
    pub fn parse_line(line: &str) -> Result<Event, String> {
        let v = Json::parse(line.trim()).map_err(|e| e.to_string())?;
        Event::from_json_value(&v)
    }
}

/// One completed trace: the root span's name and duration plus every
/// event recorded under it, in completion order.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedTrace {
    /// Trace id.
    pub trace: u64,
    /// Root span name (the request's operation).
    pub name: Cow<'static, str>,
    /// Root span duration in nanoseconds.
    pub dur_ns: u64,
    /// Events in completion order (children before their parent, the
    /// root last). Capped; [`FinishedTrace::dropped`] counts overflow.
    pub events: Vec<Event>,
    /// Events discarded because the per-trace buffer was full.
    pub dropped: u64,
}

impl FinishedTrace {
    /// Encode as a JSON value (the wire format of `trace`/`slowlog`).
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("trace".into(), jnum(self.trace)),
            ("name".into(), Json::Str(self.name.to_string())),
            ("dur_ns".into(), jnum(self.dur_ns)),
            (
                "events".into(),
                Json::Arr(self.events.iter().map(Event::to_json_value).collect()),
            ),
            ("dropped".into(), jnum(self.dropped)),
        ])
    }

    /// Decode a value produced by [`FinishedTrace::to_json_value`].
    pub fn from_json_value(v: &Json) -> Result<FinishedTrace, String> {
        let mut events = Vec::new();
        for e in v.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
            events.push(Event::from_json_value(e)?);
        }
        Ok(FinishedTrace {
            trace: jfield(v, "trace")?,
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("trace missing string field \"name\"")?
                .to_string()
                .into(),
            dur_ns: jfield(v, "dur_ns")?,
            events,
            dropped: v.get("dropped").and_then(Json::as_u64).unwrap_or(0),
        })
    }

    /// Render the span tree as indented text (what `tsvr trace` prints):
    /// children ordered by start time under their parent, incidents
    /// flagged with `!`.
    pub fn render_tree(&self) -> String {
        let mut out = format!("trace {} {} ({})\n", self.trace, self.name, fmt_ns(self.dur_ns));
        // Events arrive in completion order; index children by parent
        // span id and walk the tree from the root(s) by start time.
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| (self.events[i].start_ns, self.events[i].seq));
        let mut children: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();
        let span_ids: std::collections::BTreeSet<u64> = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .map(|e| e.span)
            .collect();
        for &i in &order {
            let e = &self.events[i];
            // Treat an unknown parent (span lost to the event cap) as a
            // root so the event still shows up.
            let parent = if span_ids.contains(&e.parent) { e.parent } else { 0 };
            children.entry(parent).or_default().push(i);
        }
        // Wire data can carry adversarial parent links (an event that is
        // its own ancestor); the visited set keeps the walk terminating
        // by printing every event at most once.
        fn walk(
            t: &FinishedTrace,
            children: &std::collections::BTreeMap<u64, Vec<usize>>,
            parent: u64,
            depth: usize,
            seen: &mut [bool],
            out: &mut String,
        ) {
            let Some(kids) = children.get(&parent) else {
                return;
            };
            for &i in kids {
                if seen[i] {
                    continue;
                }
                seen[i] = true;
                let e = &t.events[i];
                let indent = "  ".repeat(depth);
                match e.kind {
                    EventKind::Span => {
                        out.push_str(&format!(
                            "{indent}{:<width$} {:>10}\n",
                            e.name,
                            fmt_ns(e.dur_ns),
                            width = 46usize.saturating_sub(indent.len()),
                        ));
                    }
                    EventKind::Incident => {
                        out.push_str(&format!("{indent}! {}: {}\n", e.name, e.detail));
                    }
                }
                if e.kind == EventKind::Span {
                    walk(t, children, e.span, depth + 1, seen, out);
                }
            }
        }
        let mut seen = vec![false; self.events.len()];
        walk(self, &children, 0, 1, &mut seen, &mut out);
        if self.dropped > 0 {
            out.push_str(&format!("  ({} events dropped)\n", self.dropped));
        }
        out
    }
}

/// Format nanoseconds with a readable time suffix.
fn fmt_ns(v: u64) -> String {
    let v = v as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{}ns", v as u64)
    }
}

/// A bounded, overwrite-on-wrap ring of [`Event`]s.
///
/// Writers claim a monotonically increasing sequence number and write
/// the whole event under that slot's mutex, so a reader never observes
/// a torn event: every slot holds either nothing or one complete event
/// (whose `seq` says when it was recorded). The process-global instance
/// behind [`incident`] and [`tspan!`](crate::tspan!) holds the last
/// [`RECORDER_CAP`] events; tests can build small rings directly.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Event>>>,
    head: AtomicU64,
}

/// Capacity of the process-global flight recorder.
pub const RECORDER_CAP: usize = 4096;

impl FlightRecorder {
    /// A ring holding at most `cap` events (`cap >= 1`).
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        FlightRecorder {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Record one event, overwriting the oldest slot on wrap. Returns
    /// the sequence number assigned to the event.
    pub fn record(&self, mut ev: Event) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        ev.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        // A slow writer that claimed an older seq must not clobber a
        // newer event that already wrapped into the same slot.
        if guard.as_ref().is_none_or(|old| old.seq < seq) {
            *guard = Some(ev);
        }
        seq
    }

    /// Total events ever recorded (not the number currently held).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The surviving events, oldest first (ascending `seq`).
    pub fn events(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Drop every held event (the sequence counter keeps advancing).
    pub fn clear(&self) {
        for s in &self.slots {
            *s.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }
}

/// Events a single trace retains before counting drops.
pub const TRACE_EVENT_CAP: usize = 512;
/// Completed traces kept for `trace <id>` lookup.
pub const RECENT_CAP: usize = 128;
/// Slowlog entries kept.
pub const SLOWLOG_CAP: usize = 64;

#[cfg(feature = "enabled")]
mod live {
    use std::cell::Cell;
    use std::collections::{HashMap, VecDeque};
    use std::borrow::Cow;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    use super::{
        Event, EventKind, FinishedTrace, FlightRecorder, TraceCtx, RECENT_CAP, RECORDER_CAP,
        SLOWLOG_CAP, TRACE_EVENT_CAP,
    };
    use crate::metrics::Histogram;

    struct ActiveTrace {
        name: &'static str,
        events: Vec<Event>,
        dropped: u64,
    }

    /// Identity hash for the trace-id-keyed active map: ids come from a
    /// counter, so hashing them through SipHash buys nothing and costs
    /// on every published event.
    #[derive(Default)]
    struct IdHasher(u64);

    impl std::hash::Hasher for IdHasher {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = self.0.rotate_left(8) ^ u64::from(b);
            }
        }
        fn write_u64(&mut self, n: u64) {
            self.0 = n;
        }
    }

    type ActiveMap = HashMap<u64, ActiveTrace, std::hash::BuildHasherDefault<IdHasher>>;

    struct Tracer {
        next_trace: AtomicU64,
        next_span: AtomicU64,
        active: Mutex<ActiveMap>,
        recent: Mutex<VecDeque<FinishedTrace>>,
        slowlog: Mutex<VecDeque<FinishedTrace>>,
        /// Root spans at least this long enter the slowlog; `u64::MAX`
        /// disables it.
        threshold_ns: AtomicU64,
        recorder: FlightRecorder,
        dump_path: Mutex<Option<PathBuf>>,
    }

    fn tracer() -> &'static Tracer {
        static TRACER: OnceLock<Tracer> = OnceLock::new();
        TRACER.get_or_init(|| Tracer {
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            active: Mutex::new(ActiveMap::default()),
            recent: Mutex::new(VecDeque::new()),
            slowlog: Mutex::new(VecDeque::new()),
            threshold_ns: AtomicU64::new(u64::MAX),
            recorder: FlightRecorder::with_capacity(RECORDER_CAP),
            dump_path: Mutex::new(std::env::var_os("TSVR_FLIGHT_DUMP").map(PathBuf::from)),
        })
    }

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The process's tracing epoch (set at the first probe).
    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    /// `t` as nanoseconds since the tracing epoch.
    fn ns_since_epoch(t: Instant) -> u64 {
        // saturating: 0 for the instant that *set* the epoch.
        t.duration_since(epoch()).as_nanos().min(u64::MAX as u128) as u64
    }

    /// Monotonic nanoseconds since the first probe in this process.
    fn now_ns() -> u64 {
        ns_since_epoch(Instant::now())
    }

    thread_local! {
        static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
    }

    /// The calling thread's current trace context, if a traced span is
    /// live. Capture this before handing work to another thread and
    /// [`adopt`] it there.
    pub fn current() -> Option<TraceCtx> {
        CURRENT.with(Cell::get)
    }

    /// Make `ctx` the calling thread's trace context until the guard
    /// drops (restoring whatever was there before). `None` is a cheap
    /// no-op guard, so call sites can pass [`current`]'s result blindly.
    pub fn adopt(ctx: Option<TraceCtx>) -> Adopted {
        match ctx {
            Some(c) => Adopted {
                prev: Some(CURRENT.with(|cur| cur.replace(Some(c)))),
            },
            None => Adopted { prev: None },
        }
    }

    /// RAII guard from [`adopt`]; restores the previous context.
    pub struct Adopted {
        /// `Some(previous)` when a context was installed.
        prev: Option<Option<TraceCtx>>,
    }

    impl Drop for Adopted {
        fn drop(&mut self) {
            if let Some(prev) = self.prev.take() {
                CURRENT.with(|cur| cur.set(prev));
            }
        }
    }

    /// Append `ev` to its trace's buffer (if that trace is still
    /// active) and the global flight recorder.
    fn publish(ev: Event) {
        if ev.trace != 0 {
            let mut active = lock(&tracer().active);
            if let Some(t) = active.get_mut(&ev.trace) {
                if t.events.len() < TRACE_EVENT_CAP {
                    t.events.push(ev.clone());
                } else {
                    t.dropped += 1;
                    crate::counter!("obs.trace.dropped_events").incr();
                }
            }
        }
        tracer().recorder.record(ev);
    }

    /// RAII guard behind [`tspan!`](crate::tspan!): times the region
    /// into its histogram like [`span!`](crate::span!), and records a
    /// span event into the current trace (starting a new trace when
    /// none is live).
    #[must_use = "a traced span records when dropped; bind it with `let _span = ...`"]
    pub struct TracedSpan {
        inner: Option<SpanInner>,
    }

    struct SpanInner {
        hist: &'static Histogram,
        name: &'static str,
        ctx: TraceCtx,
        parent: u64,
        prev: Option<TraceCtx>,
        root: bool,
        start_ns: u64,
        t0: Instant,
        epoch: u64,
    }

    impl TracedSpan {
        /// Start a traced span (kill switch off: inert guard).
        #[doc(hidden)]
        pub fn start(name: &'static str, hist: &'static Histogram) -> TracedSpan {
            if !crate::is_enabled() {
                return TracedSpan { inner: None };
            }
            let t = tracer();
            let prev = current();
            let span = t.next_span.fetch_add(1, Ordering::Relaxed);
            let (trace, parent, root) = match prev {
                Some(p) => (p.trace, p.span, false),
                None => {
                    let id = t.next_trace.fetch_add(1, Ordering::Relaxed);
                    lock(&t.active).insert(
                        id,
                        ActiveTrace {
                            name,
                            events: Vec::new(),
                            dropped: 0,
                        },
                    );
                    (id, 0, true)
                }
            };
            let ctx = TraceCtx { trace, span };
            CURRENT.with(|cur| cur.set(Some(ctx)));
            let t0 = Instant::now();
            TracedSpan {
                inner: Some(SpanInner {
                    hist,
                    name,
                    ctx,
                    parent,
                    prev,
                    root,
                    start_ns: ns_since_epoch(t0),
                    t0,
                    epoch: crate::registry_epoch(),
                }),
            }
        }

        /// The context this span propagates ([`None`] for inert guards).
        pub fn ctx(&self) -> Option<TraceCtx> {
            self.inner.as_ref().map(|i| i.ctx)
        }
    }

    impl Drop for TracedSpan {
        fn drop(&mut self) {
            let Some(i) = self.inner.take() else {
                return;
            };
            CURRENT.with(|cur| cur.set(i.prev));
            let t = tracer();
            // A reset() since start invalidates the measurement: drop
            // the sample and the whole half-built trace rather than
            // resurrecting pre-reset state.
            if crate::registry_epoch() != i.epoch {
                if i.root {
                    lock(&t.active).remove(&i.ctx.trace);
                }
                return;
            }
            let dur = i.t0.elapsed();
            i.hist.record_duration(dur);
            let dur_ns = dur.as_nanos().min(u64::MAX as u128) as u64;
            publish(Event {
                seq: 0,
                kind: EventKind::Span,
                trace: i.ctx.trace,
                span: i.ctx.span,
                parent: i.parent,
                name: Cow::Borrowed(i.name),
                detail: Cow::Borrowed(""),
                start_ns: i.start_ns,
                dur_ns,
            });
            if !i.root {
                return;
            }
            let Some(active) = lock(&t.active).remove(&i.ctx.trace) else {
                return;
            };
            let finished = FinishedTrace {
                trace: i.ctx.trace,
                name: Cow::Borrowed(active.name),
                dur_ns,
                events: active.events,
                dropped: active.dropped,
            };
            if dur_ns >= t.threshold_ns.load(Ordering::Relaxed) {
                let mut slow = lock(&t.slowlog);
                if slow.len() >= SLOWLOG_CAP {
                    slow.pop_front();
                }
                slow.push_back(finished.clone());
            }
            let mut recent = lock(&t.recent);
            if recent.len() >= RECENT_CAP {
                recent.pop_front();
            }
            recent.push_back(finished);
        }
    }

    /// Record an incident event (retry exhausted, rollback, shed, ...)
    /// into the current trace (if any) and the flight recorder, and
    /// bump the labeled counter `obs.incident{name}`.
    pub fn incident(name: &'static str, detail: &str) {
        if !crate::is_enabled() {
            return;
        }
        let ctx = current();
        let span = tracer().next_span.fetch_add(1, Ordering::Relaxed);
        publish(Event {
            seq: 0,
            kind: EventKind::Incident,
            trace: ctx.map_or(0, |c| c.trace),
            span,
            parent: ctx.map_or(0, |c| c.span),
            name: Cow::Borrowed(name),
            detail: Cow::Owned(detail.to_string()),
            start_ns: now_ns(),
            dur_ns: 0,
        });
        crate::counter_labeled("obs.incident", name).incr();
    }

    /// [`incident`], plus an immediate flight-recorder dump — for paths
    /// after which the process state is suspect (quarantine, crash,
    /// non-durable checkpoint).
    pub fn incident_dump(name: &'static str, detail: &str) {
        incident(name, detail);
        dump_now(name);
    }

    /// Where crash dumps go; `None` disables dumping. Defaults to the
    /// `TSVR_FLIGHT_DUMP` environment variable at first probe.
    pub fn set_dump_path(path: Option<PathBuf>) {
        *lock(&tracer().dump_path) = path;
    }

    /// Write the flight recorder to the configured dump path as NDJSON
    /// (a header line, then one event per line). Returns the path
    /// written, or `None` when dumping is disabled or the write failed.
    pub fn dump_now(reason: &str) -> Option<PathBuf> {
        let path = lock(&tracer().dump_path).clone()?;
        let events = tracer().recorder.events();
        let trace = current().map_or(0, |c| c.trace);
        let header = crate::json::Json::Obj(vec![
            ("schema".into(), crate::json::Json::Str("tsvr-flight/1".into())),
            ("reason".into(), crate::json::Json::Str(reason.into())),
            ("trace".into(), crate::json::Json::Num(trace as f64)),
            ("events".into(), crate::json::Json::Num(events.len() as f64)),
        ]);
        let mut out = header.to_string();
        out.push('\n');
        for e in &events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        std::fs::write(&path, out).ok()?;
        Some(path)
    }

    /// Slowlog threshold in nanoseconds: root spans at least this long
    /// are retained with their full tree. `u64::MAX` (the default)
    /// disables the slowlog; 0 retains every trace.
    pub fn set_slow_threshold_ns(ns: u64) {
        tracer().threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Current slowlog threshold (see [`set_slow_threshold_ns`]).
    pub fn slow_threshold_ns() -> u64 {
        tracer().threshold_ns.load(Ordering::Relaxed)
    }

    /// Look up a completed trace by id (recent list, then slowlog).
    pub fn finished(trace_id: u64) -> Option<FinishedTrace> {
        if let Some(t) = lock(&tracer().recent)
            .iter()
            .rev()
            .find(|t| t.trace == trace_id)
        {
            return Some(t.clone());
        }
        lock(&tracer().slowlog)
            .iter()
            .rev()
            .find(|t| t.trace == trace_id)
            .cloned()
    }

    /// The most recently completed trace.
    pub fn latest() -> Option<FinishedTrace> {
        lock(&tracer().recent).back().cloned()
    }

    /// The retained slowlog entries, oldest first.
    pub fn slowlog() -> Vec<FinishedTrace> {
        lock(&tracer().slowlog).iter().cloned().collect()
    }

    /// The surviving flight-recorder events, oldest first.
    pub fn recorder_events() -> Vec<Event> {
        tracer().recorder.events()
    }

    /// Forget all tracing state: active buffers, recent traces, the
    /// slowlog, and the recorder's held events. Called by
    /// [`reset`](crate::reset); id counters keep advancing so ids are
    /// never reused within a process.
    pub(crate) fn clear_all() {
        let t = tracer();
        lock(&t.active).clear();
        lock(&t.recent).clear();
        lock(&t.slowlog).clear();
        t.recorder.clear();
    }
}

#[cfg(feature = "enabled")]
pub use live::{
    adopt, current, dump_now, finished, incident, incident_dump, latest, recorder_events,
    set_dump_path, set_slow_threshold_ns, slow_threshold_ns, slowlog, Adopted, TracedSpan,
};

#[cfg(feature = "enabled")]
pub(crate) use live::clear_all;

#[cfg(not(feature = "enabled"))]
mod noop {
    use std::path::PathBuf;

    use super::{Event, FinishedTrace, TraceCtx};

    /// The calling thread's trace context (probes compiled out: `None`).
    #[inline(always)]
    pub fn current() -> Option<TraceCtx> {
        None
    }

    /// Install a trace context until the guard drops (probes compiled
    /// out: inert guard).
    #[inline(always)]
    pub fn adopt(_ctx: Option<TraceCtx>) -> Adopted {
        Adopted {}
    }

    /// Inert stand-in for the enabled build's adopt guard.
    pub struct Adopted {}

    /// Record an incident event (probes compiled out: does nothing).
    #[inline(always)]
    pub fn incident(_name: &'static str, _detail: &str) {}

    /// Record an incident and dump (probes compiled out: does nothing).
    #[inline(always)]
    pub fn incident_dump(_name: &'static str, _detail: &str) {}

    /// Configure the dump path (probes compiled out: does nothing).
    #[inline(always)]
    pub fn set_dump_path(_path: Option<PathBuf>) {}

    /// Dump the recorder (probes compiled out: never dumps).
    #[inline(always)]
    pub fn dump_now(_reason: &str) -> Option<PathBuf> {
        None
    }

    /// Set the slowlog threshold (probes compiled out: does nothing).
    #[inline(always)]
    pub fn set_slow_threshold_ns(_ns: u64) {}

    /// Slowlog threshold (probes compiled out: always disabled).
    #[inline(always)]
    pub fn slow_threshold_ns() -> u64 {
        u64::MAX
    }

    /// Look up a completed trace (probes compiled out: `None`).
    #[inline(always)]
    pub fn finished(_trace_id: u64) -> Option<FinishedTrace> {
        None
    }

    /// Most recent completed trace (probes compiled out: `None`).
    #[inline(always)]
    pub fn latest() -> Option<FinishedTrace> {
        None
    }

    /// Slowlog entries (probes compiled out: empty).
    #[inline(always)]
    pub fn slowlog() -> Vec<FinishedTrace> {
        Vec::new()
    }

    /// Flight-recorder events (probes compiled out: empty).
    #[inline(always)]
    pub fn recorder_events() -> Vec<Event> {
        Vec::new()
    }

    /// Inert stand-in for the enabled build's traced-span guard.
    #[must_use = "a traced span records when dropped; bind it with `let _span = ...`"]
    pub struct TracedSpan {}

    impl TracedSpan {
        /// Inert guard (probes compiled out).
        #[doc(hidden)]
        #[inline(always)]
        pub const fn noop() -> TracedSpan {
            TracedSpan {}
        }

        /// Propagated context (probes compiled out: `None`).
        #[inline(always)]
        pub fn ctx(&self) -> Option<TraceCtx> {
            None
        }
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{
    adopt, current, dump_now, finished, incident, incident_dump, latest, recorder_events,
    set_dump_path, set_slow_threshold_ns, slow_threshold_ns, slowlog, Adopted, TracedSpan,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, trace: u64, span: u64, parent: u64, name: &str) -> Event {
        Event {
            seq,
            kind: EventKind::Span,
            trace,
            span,
            parent,
            name: name.to_string().into(),
            detail: "".into(),
            start_ns: 10 * span,
            dur_ns: 5,
        }
    }

    #[test]
    fn event_json_round_trip() {
        let e = Event {
            seq: 42,
            kind: EventKind::Incident,
            trace: 7,
            span: 9,
            parent: 3,
            name: "viddb.quarantine".into(),
            detail: "clip 4 offset 128: bad checksum".into(),
            start_ns: 123_456,
            dur_ns: 0,
        };
        let back = Event::parse_line(&e.to_json_line()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn finished_trace_json_round_trip() {
        let t = FinishedTrace {
            trace: 3,
            name: "serve.latency.page".into(),
            dur_ns: 900,
            events: vec![ev(1, 3, 2, 1, "mil.round"), ev(2, 3, 1, 0, "serve.latency.page")],
            dropped: 0,
        };
        let back = FinishedTrace::from_json_value(&t.to_json_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn render_tree_nests_children_under_parents() {
        let t = FinishedTrace {
            trace: 5,
            name: "serve.latency.feedback".into(),
            dur_ns: 3_000_000,
            events: vec![
                ev(1, 5, 3, 2, "svm.train"),
                ev(2, 5, 2, 1, "serve.learn"),
                Event {
                    kind: EventKind::Incident,
                    detail: "queue full".into(),
                    ..ev(3, 5, 4, 1, "serve.overloaded")
                },
                ev(4, 5, 1, 0, "serve.latency.feedback"),
            ],
            dropped: 0,
        };
        let tree = t.render_tree();
        let train_line = tree.lines().find(|l| l.contains("svm.train")).unwrap();
        let learn_line = tree.lines().find(|l| l.contains("serve.learn")).unwrap();
        let train_indent = train_line.len() - train_line.trim_start().len();
        let learn_indent = learn_line.len() - learn_line.trim_start().len();
        assert!(
            train_indent > learn_indent,
            "svm.train should nest under serve.learn:\n{tree}"
        );
        assert!(tree.contains("! serve.overloaded: queue full"), "{tree}");
    }

    #[test]
    fn recorder_wraps_and_keeps_newest() {
        let ring = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            ring.record(ev(0, 1, i + 1, 0, "x"));
        }
        let events = ring.events();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn corrupted_event_lines_error_not_panic() {
        let line = ev(1, 2, 3, 0, "a.b").to_json_line();
        // Truncations never panic.
        for cut in 0..line.len() {
            let _ = Event::parse_line(&line[..cut]);
        }
        assert!(Event::parse_line("{}").is_err());
        assert!(Event::parse_line("{\"kind\":\"warp\"}").is_err());
    }
}
