//! Sliding-window extraction of Video Sequences and Trajectory
//! Sequences (paper §5.1, Fig. 4).
//!
//! A Video Sequence (VS) is a window of `window_size` consecutive
//! checkpoints; a Trajectory Sequence (TS) is one vehicle's feature
//! trajectory inside a VS. The paper uses window size 3 with 5
//! frames/checkpoint ("the typical length … for [car crash] events is
//! very short i.e. about 15 frames"); clip statistics (109 TSs from 2504
//! frames) imply adjacent windows do not overlap, so the default stride
//! equals the window size. Both are configurable.

use crate::checkpoint::{build_series, Alpha, CheckpointSeries, FeatureConfig};
use tsvr_vision::Track;

/// Window extraction parameters.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Checkpoints per window (paper: 3).
    pub window_size: usize,
    /// Checkpoints between window starts (paper-calibrated default:
    /// equal to `window_size`, i.e. non-overlapping).
    pub stride: usize,
    /// Feature extraction parameters.
    pub features: FeatureConfig,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window_size: 3,
            stride: 3,
            features: FeatureConfig::default(),
        }
    }
}

/// One vehicle's trajectory inside one window — a MIL *instance*.
#[derive(Debug, Clone)]
pub struct TrajectorySequence {
    /// Originating track id.
    pub track_id: u64,
    /// Per-checkpoint property vectors (`window_size` of them).
    pub alphas: Vec<Alpha>,
}

impl TrajectorySequence {
    /// The flat feature vector fed to the learner: the concatenation
    /// `[α_1, …, α_w]` (paper §5.3 — One-class SVM "learns from the
    /// entire trajectory sequence (TS) within the window").
    pub fn feature_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.alphas.len() * 3);
        for a in &self.alphas {
            v.extend_from_slice(&a.as_array());
        }
        v
    }

    /// The per-checkpoint α with the largest squared norm — used by the
    /// initial heuristic query (§5.3 scores a TS by its highest-scoring
    /// sampling point). A checkpoint whose norm is NaN ranks lowest
    /// (NaN → −∞, the same convention as `mil` ranking), so a single
    /// undefined feature cannot panic the query path or win the peak.
    pub fn peak_alpha(&self) -> Alpha {
        *self
            .alphas
            .iter()
            .max_by(|a, b| rank_norm(a).total_cmp(&rank_norm(b)))
            .expect("trajectory sequence has at least one checkpoint")
    }
}

fn rank_norm(a: &Alpha) -> f64 {
    let [x, y, z] = a.as_array();
    let n = x * x + y * y + z * z;
    if n.is_nan() {
        f64::NEG_INFINITY
    } else {
        n
    }
}

/// One window of video — a MIL *bag*.
#[derive(Debug, Clone)]
pub struct VideoSequence {
    /// Window index within the dataset.
    pub index: usize,
    /// First checkpoint (inclusive) on the global grid.
    pub start_checkpoint: usize,
    /// First frame covered by the window. Frame spans are u64: the
    /// checkpoint grid is unbounded (`usize`), so `checkpoint × rate`
    /// can exceed `u32` on long recordings.
    pub start_frame: u64,
    /// Last frame covered (inclusive).
    pub end_frame: u64,
    /// The trajectory sequences fully covering the window.
    pub sequences: Vec<TrajectorySequence>,
}

/// The complete retrieval dataset for one clip.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Extracted video sequences (bags), in temporal order.
    pub windows: Vec<VideoSequence>,
    /// Configuration used to build the dataset.
    pub config: WindowConfig,
}

impl Dataset {
    /// Builds the dataset from vehicle tracks.
    ///
    /// ```
    /// use tsvr_sim::{Aabb, Vec2};
    /// use tsvr_trajectory::{Dataset, WindowConfig};
    /// use tsvr_vision::{Track, TrackPoint};
    ///
    /// // One vehicle crossing at 3 px/frame for 90 frames.
    /// let points = (0..90)
    ///     .map(|f| {
    ///         let c = Vec2::new(3.0 * f as f64, 100.0);
    ///         TrackPoint { frame: f, centroid: c, mbr: Aabb::from_corners(c, c), coasted: false }
    ///     })
    ///     .collect();
    /// let track = Track { id: 1, points, stats: Default::default() };
    ///
    /// let ds = Dataset::build(&[track], WindowConfig::default());
    /// // Frames 0..=89 cover checkpoints 0..=17 (C = 18 on the grid),
    /// // so floor((C - window_size)/stride) + 1 = floor(15/3) + 1 = 6.
    /// assert_eq!(ds.window_count(), 6);
    /// assert_eq!(ds.feature_dim(), 9);       // 3 checkpoints x [1/mdist, vdiff, theta]
    /// ```
    pub fn build(tracks: &[Track], config: WindowConfig) -> Dataset {
        assert!(config.window_size >= 1, "window size must be positive");
        assert!(config.stride >= 1, "stride must be positive");
        let _span = tsvr_obs::tspan!("trajectory.window.build");
        let series = build_series(tracks, &config.features);
        Self::from_series(&series, config)
    }

    /// Builds the dataset from precomputed checkpoint series.
    ///
    /// With `C` covered checkpoints on the global grid (the maximum
    /// `end_checkpoint` over the series), window starts run `0, stride,
    /// 2·stride, …` and every start `s` with `s + window_size ≤ C`
    /// yields a candidate window — `floor((C − window_size)/stride) + 1`
    /// of them when `C ≥ window_size`, zero otherwise. Candidates
    /// containing no fully-covering trajectory sequence are dropped, so
    /// [`Dataset::window_count`] can be lower than the formula.
    pub fn from_series(series: &[CheckpointSeries], config: WindowConfig) -> Dataset {
        let rate = config.features.sampling_rate as u64;
        let w = config.window_size;
        let max_ck = series.iter().map(|s| s.end_checkpoint()).max().unwrap_or(0);

        let mut windows = Vec::new();
        // Candidate starts live on the global grid 0, stride, 2·stride, …
        // but every candidate before the first covered checkpoint is
        // empty and dropped, so jump straight to the grid point at or
        // below the earliest coverage (output-identical, and keeps long
        // recordings with a late first track O(covered) not O(frames)).
        let first_covered = series.iter().map(|s| s.first_checkpoint).min().unwrap_or(0);
        let mut start = first_covered / config.stride * config.stride;
        while start + w <= max_ck {
            let mut sequences = Vec::new();
            for s in series {
                if !s.covers(start, start + w) {
                    continue;
                }
                let alphas: Vec<Alpha> =
                    (start..start + w).map(|k| s.alpha_at(k).unwrap()).collect();
                sequences.push(TrajectorySequence {
                    track_id: s.track_id,
                    alphas,
                });
            }
            if !sequences.is_empty() {
                windows.push(VideoSequence {
                    index: windows.len(),
                    start_checkpoint: start,
                    start_frame: start as u64 * rate,
                    // The window "owns" the frames up to (but not
                    // including) the next checkpoint after its last one:
                    // w checkpoints x rate frames.
                    end_frame: (start + w) as u64 * rate - 1,
                    sequences,
                });
            }
            start += config.stride;
        }
        Dataset { windows, config }
    }

    /// Total number of trajectory sequences across all windows (the
    /// paper's "TS count": 109 for clip 1, 168 for clip 2).
    pub fn sequence_count(&self) -> usize {
        self.windows.iter().map(|w| w.sequences.len()).sum()
    }

    /// Number of windows (bags).
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Dimensionality of TS feature vectors (`3 * window_size`).
    pub fn feature_dim(&self) -> usize {
        3 * self.config.window_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvr_sim::{Aabb, Vec2};
    use tsvr_vision::TrackPoint;

    fn track(id: u64, frames: std::ops::Range<u32>, f: impl Fn(f64) -> Vec2) -> Track {
        Track {
            id,
            points: frames
                .map(|fr| {
                    let c = f(fr as f64);
                    TrackPoint {
                        frame: fr,
                        centroid: c,
                        mbr: Aabb::from_corners(c, c),
                        coasted: false,
                    }
                })
                .collect(),
            stats: Default::default(),
        }
    }

    #[test]
    fn window_counts_and_spans() {
        // One track over frames 0..=89 -> checkpoints 0..=17 (18 of
        // them) -> 6 non-overlapping windows of 3.
        let t = track(1, 0..90, |f| Vec2::new(3.0 * f, 100.0));
        let ds = Dataset::build(&[t], WindowConfig::default());
        assert_eq!(ds.window_count(), 6);
        assert_eq!(ds.sequence_count(), 6);
        let w0 = &ds.windows[0];
        assert_eq!(w0.start_frame, 0);
        assert_eq!(w0.end_frame, 14); // 15 frames per window, as in the paper
        assert_eq!(ds.windows[1].start_frame, 15);
        assert_eq!(ds.feature_dim(), 9);
    }

    #[test]
    fn overlapping_stride_multiplies_windows() {
        let t = track(1, 0..90, |f| Vec2::new(3.0 * f, 100.0));
        let cfg = WindowConfig {
            stride: 1,
            ..WindowConfig::default()
        };
        let ds = Dataset::build(&[t], cfg);
        // Checkpoints 0..=17 -> starts 0..=15 -> 16 windows.
        assert_eq!(ds.window_count(), 16);
    }

    #[test]
    fn partial_coverage_excluded() {
        // Track 2 enters mid-clip and only covers later windows.
        let a = track(1, 0..90, |f| Vec2::new(3.0 * f, 100.0));
        let b = track(2, 40..90, |f| Vec2::new(2.0 * (f - 40.0), 140.0));
        let ds = Dataset::build(&[a, b], WindowConfig::default());
        let w0 = &ds.windows[0];
        assert_eq!(w0.sequences.len(), 1);
        let last = ds.windows.last().unwrap();
        assert_eq!(last.sequences.len(), 2);
    }

    #[test]
    fn empty_windows_are_skipped() {
        // Two tracks with a dead gap between them.
        let a = track(1, 0..30, |f| Vec2::new(3.0 * f, 100.0));
        let b = track(2, 120..150, |f| Vec2::new(3.0 * (f - 120.0), 100.0));
        let ds = Dataset::build(&[a, b], WindowConfig::default());
        for w in &ds.windows {
            assert!(!w.sequences.is_empty());
        }
        // Window indices stay dense.
        for (i, w) in ds.windows.iter().enumerate() {
            assert_eq!(w.index, i);
        }
    }

    #[test]
    fn feature_vector_concatenates_alphas() {
        let t = track(1, 0..90, |f| Vec2::new(3.0 * f, 100.0));
        let ds = Dataset::build(&[t], WindowConfig::default());
        let ts = &ds.windows[2].sequences[0];
        let fv = ts.feature_vector();
        assert_eq!(fv.len(), 9);
        for (i, a) in ts.alphas.iter().enumerate() {
            assert_eq!(&fv[i * 3..i * 3 + 3], &a.as_array());
        }
    }

    #[test]
    fn peak_alpha_is_max_norm() {
        let ts = TrajectorySequence {
            track_id: 1,
            alphas: vec![
                Alpha {
                    inv_mdist: 0.1,
                    vdiff: 0.0,
                    theta: 0.0,
                },
                Alpha {
                    inv_mdist: 0.0,
                    vdiff: 3.0,
                    theta: 1.0,
                },
                Alpha::ZERO,
            ],
        };
        let p = ts.peak_alpha();
        assert_eq!(p.vdiff, 3.0);
    }

    #[test]
    fn peak_alpha_ignores_nan_checkpoints() {
        // A NaN feature ranks lowest instead of panicking the
        // `partial_cmp().unwrap()` way; the finite peak still wins.
        let ts = TrajectorySequence {
            track_id: 1,
            alphas: vec![
                Alpha {
                    inv_mdist: f64::NAN,
                    vdiff: 0.0,
                    theta: 0.0,
                },
                Alpha {
                    inv_mdist: 0.0,
                    vdiff: 2.0,
                    theta: 0.0,
                },
            ],
        };
        assert_eq!(ts.peak_alpha().vdiff, 2.0);

        // All-NaN sequences still return *something* (no panic).
        let all_nan = TrajectorySequence {
            track_id: 2,
            alphas: vec![Alpha {
                inv_mdist: f64::NAN,
                vdiff: f64::NAN,
                theta: f64::NAN,
            }],
        };
        assert!(all_nan.peak_alpha().vdiff.is_nan());
    }

    #[test]
    fn frame_spans_survive_u32_overflow() {
        use crate::checkpoint::CheckpointSeries;
        // A series that starts ~900M checkpoints in: at 5 frames per
        // checkpoint the frame offsets exceed u32::MAX (~4.29e9), which
        // the old `start as u32 * rate` math silently wrapped.
        let first = 900_000_000usize;
        let n = 6usize;
        let series = CheckpointSeries {
            track_id: 7,
            first_checkpoint: first,
            positions: (0..n).map(|k| Vec2::new(3.0 * k as f64, 100.0)).collect(),
            alphas: vec![Alpha::ZERO; n],
        };
        let cfg = WindowConfig::default();
        let rate = cfg.features.sampling_rate as u64;
        let ds = Dataset::from_series(&[series], cfg);
        assert_eq!(ds.window_count(), 2);
        let w0 = &ds.windows[0];
        assert_eq!(w0.start_checkpoint, first);
        assert_eq!(w0.start_frame, first as u64 * rate);
        assert!(w0.start_frame > u64::from(u32::MAX));
        assert_eq!(w0.end_frame, (first as u64 + 3) * rate - 1);
        assert_eq!(
            ds.windows[1].start_frame,
            (first as u64 + 3) * rate,
            "adjacent windows stay contiguous past the u32 boundary"
        );
    }

    #[test]
    fn no_tracks_no_windows() {
        let ds = Dataset::build(&[], WindowConfig::default());
        assert_eq!(ds.window_count(), 0);
        assert_eq!(ds.sequence_count(), 0);
    }

    #[test]
    fn from_series_matches_build() {
        use crate::checkpoint::build_series;
        let t = track(1, 0..90, |f| Vec2::new(3.0 * f, 100.0));
        let cfg = WindowConfig::default();
        let series = build_series(std::slice::from_ref(&t), &cfg.features);
        let via_series = Dataset::from_series(&series, cfg);
        let via_build = Dataset::build(&[t], cfg);
        assert_eq!(via_series.window_count(), via_build.window_count());
        assert_eq!(via_series.sequence_count(), via_build.sequence_count());
        for (a, b) in via_series.windows.iter().zip(&via_build.windows) {
            assert_eq!(a.start_frame, b.start_frame);
            assert_eq!(a.sequences.len(), b.sequences.len());
        }
    }

    #[test]
    #[should_panic]
    fn zero_window_size_panics() {
        let cfg = WindowConfig {
            window_size: 0,
            stride: 1,
            features: crate::checkpoint::FeatureConfig::default(),
        };
        let _ = Dataset::build(&[], cfg);
    }

    #[test]
    fn incident_vehicle_has_hot_features_in_its_window() {
        // Vehicle stops abruptly at frame 45 (checkpoint 9, window 3).
        let a = track(1, 0..90, |f| {
            let x = if f <= 45.0 { 4.0 * f } else { 180.0 };
            Vec2::new(x, 100.0)
        });
        let ds = Dataset::build(&[a], WindowConfig::default());
        // Find the window with the max peak vdiff.
        let hottest = ds
            .windows
            .iter()
            .max_by(|a, b| {
                let pa = a.sequences[0].peak_alpha().vdiff;
                let pb = b.sequences[0].peak_alpha().vdiff;
                pa.partial_cmp(&pb).unwrap()
            })
            .unwrap();
        // The stop at frame 45 falls in window 3 (frames 45..=59).
        assert_eq!(
            hottest.index, 3,
            "hot window at frames {}..={}",
            hottest.start_frame, hottest.end_frame
        );
    }
}
