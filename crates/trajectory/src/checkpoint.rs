//! Checkpoint resampling and the per-checkpoint property vector of §4.
//!
//! The paper samples each trajectory every 5 frames ("sampling rate is 5
//! frames/checkpoints") and records three properties per checkpoint:
//!
//! * `vdiff` — the absolute change of speed since the previous
//!   checkpoint;
//! * `θ` — the absolute angle between the current and previous motion
//!   vectors (Fig. 3);
//! * `mdist` — the minimum distance to the nearest other vehicle, used
//!   inverted (`1/mdist`) in the property vector
//!   `α_i = [1/mdist_i, vdiff_i, θ_i]`.

use crate::model::TrajectoryModel;
use tsvr_sim::Vec2;
use tsvr_vision::Track;

/// Where per-checkpoint velocities (and hence `vdiff` and the motion
/// vectors behind `θ`) come from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VelocitySource {
    /// §3.2's formulation: fit the centroid series with a least-squares
    /// polynomial ([`TrajectoryModel`]) and read the velocity off the
    /// fitted curve's first derivative, which smooths segmentation
    /// jitter out of the speed signal. The fit is re-anchored at every
    /// checkpoint over a local span of ±2 checkpoint intervals: the
    /// paper demonstrates the fit on short trajectory segments (Fig. 2),
    /// and one low-degree polynomial over a long multi-event track
    /// would smear an abrupt stop into nothing.
    PolyfitDerivative {
        /// Polynomial degree (paper Fig. 2: 4); automatically reduced
        /// when the local span holds too few points.
        degree: usize,
    },
    /// Raw centroid finite differences between consecutive checkpoints
    /// (the pre-§3.2 fallback; noisier but strictly local in time).
    FiniteDifference,
}

/// Configuration of the checkpoint/feature extraction.
#[derive(Debug, Clone, Copy)]
pub struct FeatureConfig {
    /// Frames between checkpoints (paper: 5).
    pub sampling_rate: u32,
    /// Distances above this are treated as "no neighbor" (the paper's
    /// clips are single-camera scenes; a vehicle on the far side of the
    /// image exerts no accident pressure).
    pub max_neighbor_dist: f64,
    /// Floor applied to `mdist` before inversion, so contact (distance
    /// ~0) maps to a finite maximum of `1/min_dist_floor`.
    pub min_dist_floor: f64,
    /// Minimum motion-vector length (px per checkpoint interval) for a
    /// direction to be defined. Below this the vehicle is effectively
    /// stationary and its centroid jitter would turn θ into pure noise
    /// (queued traffic at a red light would otherwise out-score real
    /// direction changes), so θ is reported as 0.
    pub min_motion: f64,
    /// Physical cap for `vdiff` (px/frame) used by the fixed-range
    /// normalization: no plausible vehicle in a surveillance image
    /// changes speed faster than this between checkpoints.
    pub vdiff_cap: f64,
    /// Velocity formulation (paper: the polynomial derivative).
    pub velocity: VelocitySource,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            sampling_rate: 5,
            max_neighbor_dist: 120.0,
            min_dist_floor: 4.0,
            min_motion: 2.5,
            vdiff_cap: 8.0,
            velocity: VelocitySource::PolyfitDerivative { degree: 4 },
        }
    }
}

impl FeatureConfig {
    /// Validates the configuration, returning a description of the
    /// first problem found.
    ///
    /// A zero (or negative, or non-finite) `min_dist_floor` is the
    /// dangerous one: it makes `inv_mdist = 1/mdist` unbounded, and the
    /// resulting ∞/NaN features flow into SVM training undetected and
    /// corrupt every downstream ranking. [`build_series`] rejects
    /// invalid configurations up front instead.
    pub fn validate(&self) -> Result<(), String> {
        if self.sampling_rate < 1 {
            return Err("sampling_rate must be >= 1 frame per checkpoint".into());
        }
        if !(self.min_dist_floor > 0.0 && self.min_dist_floor.is_finite()) {
            return Err(format!(
                "min_dist_floor must be positive and finite (got {}); \
                 a zero floor makes 1/mdist infinite",
                self.min_dist_floor
            ));
        }
        if !(self.max_neighbor_dist > 0.0 && self.max_neighbor_dist.is_finite()) {
            return Err(format!(
                "max_neighbor_dist must be positive and finite (got {})",
                self.max_neighbor_dist
            ));
        }
        if !(self.min_motion >= 0.0 && self.min_motion.is_finite()) {
            return Err(format!(
                "min_motion must be non-negative and finite (got {})",
                self.min_motion
            ));
        }
        if !(self.vdiff_cap > 0.0 && self.vdiff_cap.is_finite()) {
            return Err(format!(
                "vdiff_cap must be positive and finite (got {})",
                self.vdiff_cap
            ));
        }
        if let VelocitySource::PolyfitDerivative { degree } = self.velocity {
            if degree < 1 {
                return Err("polyfit velocity degree must be >= 1".into());
            }
        }
        Ok(())
    }
}

/// The property vector α of one checkpoint (paper §4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alpha {
    /// `1 / mdist` — inverse distance to the nearest other vehicle
    /// (0 when no vehicle is within range).
    pub inv_mdist: f64,
    /// `vdiff` — absolute speed change since the previous checkpoint,
    /// px/frame.
    pub vdiff: f64,
    /// `θ` — absolute angle between consecutive motion vectors, radians.
    pub theta: f64,
}

impl Alpha {
    /// The all-zero vector (a perfectly steady, isolated vehicle).
    pub const ZERO: Alpha = Alpha {
        inv_mdist: 0.0,
        vdiff: 0.0,
        theta: 0.0,
    };

    /// As a 3-element array `[1/mdist, vdiff, θ]`.
    pub fn as_array(&self) -> [f64; 3] {
        [self.inv_mdist, self.vdiff, self.theta]
    }

    /// Fixed-range normalization into `[0, 1]³`, using each feature's
    /// *physical* bounds rather than the per-clip extrema:
    ///
    /// * `1/mdist` is divided by its theoretical maximum
    ///   `1/min_dist_floor` (bodies in contact);
    /// * `vdiff` by `vdiff_cap`;
    /// * `θ` by π (a full reversal).
    ///
    /// Per-clip min–max scaling would inflate ordinary following
    /// distances to near 1 in a clip where no two vehicles ever touch,
    /// making quiet traffic indistinguishable from contact events.
    /// Fixed ranges also keep features comparable across clips, which
    /// is what the paper's future-work normalization asks for.
    pub fn normalized(&self, cfg: &FeatureConfig) -> [f64; 3] {
        [
            (self.inv_mdist * cfg.min_dist_floor).clamp(0.0, 1.0),
            (self.vdiff / cfg.vdiff_cap).clamp(0.0, 1.0),
            (self.theta / std::f64::consts::PI).clamp(0.0, 1.0),
        ]
    }
}

/// A track resampled on the global checkpoint grid.
#[derive(Debug, Clone)]
pub struct CheckpointSeries {
    /// Originating track id.
    pub track_id: u64,
    /// Index of the first covered checkpoint on the global grid
    /// (checkpoint `k` is at frame `k * sampling_rate`).
    pub first_checkpoint: usize,
    /// Centroid position at each covered checkpoint.
    pub positions: Vec<Vec2>,
    /// Property vector at each covered checkpoint (same length as
    /// `positions`; the leading entries — one for the polyfit velocity
    /// source, two for finite differences — have zero `vdiff`/`θ`
    /// because no motion history exists yet).
    pub alphas: Vec<Alpha>,
}

impl CheckpointSeries {
    /// Number of covered checkpoints.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Index one past the last covered checkpoint.
    pub fn end_checkpoint(&self) -> usize {
        self.first_checkpoint + self.len()
    }

    /// Whether checkpoints `[k0, k1)` are all covered.
    pub fn covers(&self, k0: usize, k1: usize) -> bool {
        k0 >= self.first_checkpoint && k1 <= self.end_checkpoint()
    }

    /// Position at global checkpoint `k`, if covered.
    pub fn position_at(&self, k: usize) -> Option<Vec2> {
        if k < self.first_checkpoint {
            return None;
        }
        self.positions.get(k - self.first_checkpoint).copied()
    }

    /// α at global checkpoint `k`, if covered.
    pub fn alpha_at(&self, k: usize) -> Option<Alpha> {
        if k < self.first_checkpoint {
            return None;
        }
        self.alphas.get(k - self.first_checkpoint).copied()
    }
}

/// Resamples every track on the global checkpoint grid and computes the
/// per-checkpoint property vectors. `mdist` at a checkpoint considers
/// every *other* track alive at the same checkpoint (not only those
/// that later qualify as trajectory sequences).
///
/// Pass 2 (the all-pairs neighbor scan) fans out one task per series on
/// the [`tsvr_par`] runtime; each series' α vector depends only on the
/// read-only pass-1 positions, so the parallel result is bit-identical
/// to the sequential loop.
///
/// # Panics
///
/// Panics if `cfg` fails [`FeatureConfig::validate`] — an invalid
/// configuration (e.g. a zero `min_dist_floor`) would silently emit
/// non-finite features.
pub fn build_series(tracks: &[Track], cfg: &FeatureConfig) -> Vec<CheckpointSeries> {
    if let Err(msg) = cfg.validate() {
        panic!("invalid FeatureConfig: {msg}");
    }
    let rate = cfg.sampling_rate;

    // Pass 1: per-track checkpoint positions.
    struct Raw {
        track_id: u64,
        track_index: usize,
        first: usize,
        positions: Vec<Vec2>,
    }
    let mut raws: Vec<Raw> = Vec::new();
    for (track_index, t) in tracks.iter().enumerate() {
        let start = t.start_frame();
        let end = t.end_frame();
        let first = start.div_ceil(rate) as usize;
        let last = (end / rate) as usize;
        if last < first {
            continue;
        }
        let mut positions = Vec::with_capacity(last - first + 1);
        for k in first..=last {
            let frame = k as u32 * rate;
            match t.centroid_at(frame) {
                Some(c) => positions.push(c),
                None => unreachable!("track frames are contiguous"),
            }
        }
        raws.push(Raw {
            track_id: t.id,
            track_index,
            first,
            positions,
        });
    }

    // Fitted tangent velocities per checkpoint (independent
    // least-squares solves per series, so they also fan out).
    let velocities: Vec<Option<Vec<Vec2>>> = match cfg.velocity {
        VelocitySource::PolyfitDerivative { degree } => tsvr_par::par_map(&raws, |_, r| {
            Some(polyfit_velocities(
                &tracks[r.track_index],
                r.first,
                r.positions.len(),
                rate,
                degree,
            ))
        }),
        VelocitySource::FiniteDifference => raws.iter().map(|_| None).collect(),
    };

    // Pass 2: property vectors, with mdist against all other series.
    let alphas_per_series: Vec<Vec<Alpha>> = tsvr_par::par_map(&raws, |i, raw| {
        let vels = velocities[i].as_ref();
        let mut alphas = Vec::with_capacity(raw.positions.len());
        for (j, &pos) in raw.positions.iter().enumerate() {
            let k = raw.first + j;
            // Minimum distance to any other vehicle at this checkpoint.
            let mut mdist = f64::INFINITY;
            for (o, other) in raws.iter().enumerate() {
                if o == i {
                    continue;
                }
                if let Some(op) = other
                    .positions
                    .get(k.wrapping_sub(other.first))
                    .filter(|_| k >= other.first)
                {
                    mdist = mdist.min(pos.dist(*op));
                }
            }
            let inv_mdist = if mdist <= cfg.max_neighbor_dist {
                1.0 / mdist.max(cfg.min_dist_floor)
            } else {
                0.0
            };

            let (vdiff, theta) = match vels {
                // §3.2: velocity is the fitted curve's tangent, defined
                // at every checkpoint, so one step of history suffices.
                Some(vels) if j >= 1 => {
                    let v1 = vels[j - 1];
                    let v2 = vels[j];
                    // Tangent px/frame × rate = px per checkpoint
                    // interval, the unit `min_motion` is stated in.
                    let step = rate as f64;
                    (
                        (v2.norm() - v1.norm()).abs(),
                        if v1.norm() * step >= cfg.min_motion && v2.norm() * step >= cfg.min_motion
                        {
                            v1.angle_between(v2)
                        } else {
                            0.0
                        },
                    )
                }
                // Raw finite differences need two checkpoints of
                // history to form both motion vectors.
                None if j >= 2 => {
                    let m1 = raw.positions[j - 1] - raw.positions[j - 2];
                    let m2 = pos - raw.positions[j - 1];
                    let v1 = m1.norm() / rate as f64;
                    let v2 = m2.norm() / rate as f64;
                    (
                        (v2 - v1).abs(),
                        if m1.norm() >= cfg.min_motion && m2.norm() >= cfg.min_motion {
                            m1.angle_between(m2)
                        } else {
                            0.0
                        },
                    )
                }
                _ => (0.0, 0.0),
            };

            alphas.push(Alpha {
                inv_mdist,
                vdiff,
                theta,
            });
        }
        alphas
    });

    raws.into_iter()
        .zip(alphas_per_series)
        .map(|(raw, alphas)| CheckpointSeries {
            track_id: raw.track_id,
            first_checkpoint: raw.first,
            positions: raw.positions,
            alphas,
        })
        .collect()
}

/// Tangent velocity (px/frame) at each covered checkpoint of one track,
/// from least-squares polynomial fits re-anchored on a local span of
/// ±2 checkpoint intervals around each checkpoint.
fn polyfit_velocities(
    track: &Track,
    first: usize,
    count: usize,
    rate: u32,
    degree: usize,
) -> Vec<Vec2> {
    let start = track.start_frame();
    let end = track.end_frame();
    let half_span = 2 * rate;
    (0..count)
        .map(|j| {
            let frame = (first + j) as u32 * rate;
            let lo = frame.saturating_sub(half_span).max(start);
            let hi = (frame + half_span).min(end);
            let sub = Track {
                id: track.id,
                points: track.points[(lo - start) as usize..=(hi - start) as usize].to_vec(),
                stats: Default::default(),
            };
            match TrajectoryModel::fit(&sub, degree) {
                Ok(m) => m.velocity(frame as f64),
                // Degenerate span (e.g. collinear duplicate centroids
                // defeating the solver): raw one-frame slope.
                Err(_) => {
                    let p = track.points[(frame - start) as usize].centroid;
                    let prev = frame.max(start + 1) - 1;
                    let q = track.points[(prev - start) as usize].centroid;
                    p - q
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvr_sim::Aabb;
    use tsvr_vision::TrackPoint;

    fn track(id: u64, frames: std::ops::Range<u32>, f: impl Fn(f64) -> Vec2) -> Track {
        Track {
            id,
            points: frames
                .map(|fr| {
                    let c = f(fr as f64);
                    TrackPoint {
                        frame: fr,
                        centroid: c,
                        mbr: Aabb::from_corners(c, c),
                        coasted: false,
                    }
                })
                .collect(),
            stats: Default::default(),
        }
    }

    fn cfg() -> FeatureConfig {
        FeatureConfig::default()
    }

    fn fd_cfg() -> FeatureConfig {
        FeatureConfig {
            velocity: VelocitySource::FiniteDifference,
            ..FeatureConfig::default()
        }
    }

    #[test]
    fn grid_alignment() {
        // Track covering frames 7..=23 with rate 5 covers checkpoints
        // 2 (frame 10), 3 (15), 4 (20).
        let t = track(1, 7..24, |f| Vec2::new(f, 0.0));
        let s = build_series(&[t], &cfg());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].first_checkpoint, 2);
        assert_eq!(s[0].len(), 3);
        assert_eq!(s[0].positions[0], Vec2::new(10.0, 0.0));
        assert!(s[0].covers(2, 5));
        assert!(!s[0].covers(1, 4));
        assert!(s[0].position_at(4).is_some());
        assert!(s[0].position_at(5).is_none());
        assert!(s[0].position_at(1).is_none());
    }

    #[test]
    fn steady_motion_has_zero_features() {
        let t = track(1, 0..60, |f| Vec2::new(3.0 * f, 100.0));
        // Finite differences on an exact line are exactly quiet.
        let s = build_series(std::slice::from_ref(&t), &fd_cfg());
        for a in &s[0].alphas {
            assert_eq!(a.inv_mdist, 0.0); // no neighbors
            assert!(a.vdiff < 1e-9);
            assert!(a.theta < 1e-9);
        }
        // The fitted-polynomial tangent recovers the line to solver
        // precision.
        let s = build_series(&[t], &cfg());
        for a in &s[0].alphas {
            assert_eq!(a.inv_mdist, 0.0);
            assert!(a.vdiff < 1e-5, "vdiff {}", a.vdiff);
            assert!(a.theta < 1e-5, "theta {}", a.theta);
        }
    }

    #[test]
    fn sudden_stop_produces_vdiff_spike() {
        // 4 px/frame until frame 30, then stopped. Raw finite
        // differences localize the spike to one checkpoint.
        let t = track(1, 0..60, |f| {
            let x = if f <= 30.0 { 4.0 * f } else { 120.0 };
            Vec2::new(x, 100.0)
        });
        let s = build_series(std::slice::from_ref(&t), &fd_cfg());
        let max_vdiff = s[0].alphas.iter().map(|a| a.vdiff).fold(0.0, f64::max);
        assert!(max_vdiff > 3.0, "max vdiff {max_vdiff}");
        // Steady phases on both sides are quiet.
        assert!(s[0].alphas[2].vdiff < 1e-9);
        assert!(s[0].alphas.last().unwrap().vdiff < 1e-9);

        // The polynomial tangent smears the discontinuity but still
        // registers a clear deceleration signal.
        let s = build_series(&[t], &cfg());
        let max_vdiff = s[0].alphas.iter().map(|a| a.vdiff).fold(0.0, f64::max);
        assert!(max_vdiff > 1.0, "polyfit max vdiff {max_vdiff}");
    }

    #[test]
    fn turn_produces_theta_spike() {
        // Move +x, then turn to +y at frame 30.
        let t = track(1, 0..60, |f| {
            if f <= 30.0 {
                Vec2::new(3.0 * f, 100.0)
            } else {
                Vec2::new(90.0, 100.0 + 3.0 * (f - 30.0))
            }
        });
        let s = build_series(&[t], &fd_cfg());
        let max_theta = s[0].alphas.iter().map(|a| a.theta).fold(0.0, f64::max);
        assert!(
            (max_theta - std::f64::consts::FRAC_PI_2).abs() < 0.4,
            "max theta {max_theta}"
        );
    }

    #[test]
    fn velocity_sources_agree_on_smooth_track() {
        // A gentle constant-curvature arc is exactly representable by
        // the polynomial model and well sampled by finite differences,
        // so the two formulations must agree closely.
        let t = track(1, 0..80, |f| {
            Vec2::new(3.0 * f, 100.0 + 0.01 * f * f)
        });
        let fd = build_series(std::slice::from_ref(&t), &fd_cfg());
        let pf = build_series(&[t], &cfg());
        assert_eq!(fd[0].len(), pf[0].len());
        // Skip the warm-up entries (fd needs two steps of history).
        for (a, b) in fd[0].alphas.iter().zip(&pf[0].alphas).skip(2) {
            assert!(
                (a.vdiff - b.vdiff).abs() < 0.05,
                "vdiff fd {} vs polyfit {}",
                a.vdiff,
                b.vdiff
            );
            assert!(
                (a.theta - b.theta).abs() < 0.05,
                "theta fd {} vs polyfit {}",
                a.theta,
                b.theta
            );
        }
    }

    #[test]
    fn polyfit_smooths_centroid_jitter() {
        // Line plus uncorrelated ±1 px per-frame jitter (hash noise,
        // the shape of segmentation centroid error): raw finite
        // differences see phantom speed changes at every checkpoint;
        // the fitted tangent averages the whole local span.
        let noise = |f: f64| {
            let h = (f as u32).wrapping_mul(2654435761);
            ((h >> 16) & 0xff) as f64 / 127.5 - 1.0
        };
        let t = track(1, 0..80, |f| {
            Vec2::new(3.0 * f + noise(f), 100.0 + noise(f + 1000.0))
        });
        let noisy = build_series(std::slice::from_ref(&t), &fd_cfg());
        let smooth = build_series(&[t], &cfg());
        // Compare interior checkpoints, where the fitting span is
        // centered (at the track edges the off-center evaluation is
        // noisier by construction, for either source).
        let max = |s: &CheckpointSeries| {
            let n = s.alphas.len();
            s.alphas[3..n - 3]
                .iter()
                .map(|a| a.vdiff)
                .fold(0.0, f64::max)
        };
        assert!(
            max(&smooth[0]) < max(&noisy[0]),
            "polyfit {} vs fd {}",
            max(&smooth[0]),
            max(&noisy[0])
        );
    }

    #[test]
    fn config_validation_catches_degenerate_values() {
        assert!(cfg().validate().is_ok());
        assert!(fd_cfg().validate().is_ok());

        let bad = |f: fn(&mut FeatureConfig)| {
            let mut c = cfg();
            f(&mut c);
            c.validate()
        };
        assert!(bad(|c| c.sampling_rate = 0).is_err());
        assert!(bad(|c| c.min_dist_floor = 0.0).is_err());
        assert!(bad(|c| c.min_dist_floor = -1.0).is_err());
        assert!(bad(|c| c.min_dist_floor = f64::NAN).is_err());
        assert!(bad(|c| c.max_neighbor_dist = f64::INFINITY).is_err());
        assert!(bad(|c| c.max_neighbor_dist = 0.0).is_err());
        assert!(bad(|c| c.min_motion = -0.5).is_err());
        assert!(bad(|c| c.min_motion = f64::NAN).is_err());
        assert!(bad(|c| c.vdiff_cap = 0.0).is_err());
        assert!(bad(|c| c.velocity = VelocitySource::PolyfitDerivative { degree: 0 }).is_err());
    }

    #[test]
    #[should_panic(expected = "min_dist_floor")]
    fn build_series_rejects_zero_dist_floor() {
        let t = track(1, 0..30, |f| Vec2::new(f, 0.0));
        let c = FeatureConfig {
            min_dist_floor: 0.0,
            ..FeatureConfig::default()
        };
        let _ = build_series(&[t], &c);
    }

    #[test]
    fn mdist_reflects_proximity() {
        let a = track(1, 0..60, |f| Vec2::new(3.0 * f, 100.0));
        // Converges toward track a.
        let b = track(2, 0..60, |f| Vec2::new(3.0 * f, 160.0 - f));
        let s = build_series(&[a, b], &cfg());
        let inv =
            |s: &CheckpointSeries| -> Vec<f64> { s.alphas.iter().map(|a| a.inv_mdist).collect() };
        let ia = inv(&s[0]);
        // Distance shrinks over time, so 1/mdist grows.
        assert!(ia.last().unwrap() > ia.first().unwrap());
        // Symmetric for the other track.
        let ib = inv(&s[1]);
        for (x, y) in ia.iter().zip(&ib) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn mdist_floor_caps_inverse() {
        let a = track(1, 0..30, |f| Vec2::new(3.0 * f, 100.0));
        let b = track(2, 0..30, |f| Vec2::new(3.0 * f, 100.5)); // almost touching
        let s = build_series(&[a, b], &cfg());
        let max_inv = s[0].alphas.iter().map(|a| a.inv_mdist).fold(0.0, f64::max);
        assert!((max_inv - 1.0 / cfg().min_dist_floor).abs() < 1e-9);
    }

    #[test]
    fn distant_vehicles_do_not_register() {
        let a = track(1, 0..30, |f| Vec2::new(3.0 * f, 10.0));
        let b = track(2, 0..30, |f| Vec2::new(3.0 * f, 300.0));
        let s = build_series(&[a, b], &cfg());
        assert!(s[0].alphas.iter().all(|x| x.inv_mdist == 0.0));
    }

    #[test]
    fn short_track_yields_no_series() {
        // 3 frames at rate 5 may cover at most one checkpoint; a track
        // covering none disappears.
        let t = track(1, 6..9, |f| Vec2::new(f, 0.0));
        let s = build_series(&[t], &cfg());
        assert!(s.is_empty());
    }

    #[test]
    fn alpha_at_respects_grid() {
        let t = track(1, 0..40, |f| Vec2::new(f, 0.0));
        let s = build_series(&[t], &cfg());
        assert!(s[0].alpha_at(0).is_some());
        assert!(s[0].alpha_at(7).is_some());
        assert!(s[0].alpha_at(8).is_none());
        assert_eq!(s[0].alpha_at(0).unwrap(), Alpha::ZERO);
    }

    #[test]
    fn as_array_layout_matches_paper() {
        let a = Alpha {
            inv_mdist: 0.5,
            vdiff: 1.5,
            theta: 0.3,
        };
        assert_eq!(a.as_array(), [0.5, 1.5, 0.3]);
    }
}
