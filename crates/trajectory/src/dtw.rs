//! Dynamic time warping over planar trajectories, the matcher behind
//! query-by-sketch (paper §7, future work: "query by sketches").
//!
//! A sketch is compared against tracked trajectories by shape, not by
//! absolute position or speed: both curves are resampled uniformly by
//! arc length, translated to start at the origin, scaled to unit total
//! length, and aligned with DTW under Euclidean local cost. The result
//! is invariant to where in the image the maneuver happened and how fast
//! it was driven — exactly what "find trajectories shaped like this" needs.

use tsvr_sim::Vec2;

/// Plain DTW distance between two point sequences (Euclidean local
/// cost), normalized by the warping-path length so values are comparable
/// across sequence lengths. Returns `f64::INFINITY` if either input is
/// empty.
pub fn dtw_distance(a: &[Vec2], b: &[Vec2]) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    // DP over accumulated cost; also track path length for
    // normalization. Cell (i, j) only ever reads row i-1 and the cell
    // to its left, so two rolling rows replace the full n×m matrix —
    // O(m) resident instead of O(n·m), and the left/diagonal
    // predecessors ride in locals so the inner loop touches memory
    // once per cell. Predecessor selection (up, left, diag; strict
    // `<`, ties keep the earlier candidate) matches the original
    // full-matrix formulation exactly, so results are bit-identical
    // to it.
    let mut prev_cost = vec![f64::INFINITY; m];
    let mut prev_steps = vec![0u32; m];
    let mut curr_cost = vec![f64::INFINITY; m];
    let mut curr_steps = vec![0u32; m];
    // Row 0: only the left predecessor exists.
    curr_cost[0] = a[0].dist(b[0]);
    curr_steps[0] = 1;
    for j in 1..m {
        let local = a[0].dist(b[j]);
        let (left_c, left_s) = (curr_cost[j - 1], curr_steps[j - 1]);
        let (best, best_steps) = if left_c < f64::INFINITY {
            (left_c, left_s)
        } else {
            (f64::INFINITY, 0)
        };
        curr_cost[j] = best + local;
        curr_steps[j] = best_steps + 1;
    }
    std::mem::swap(&mut prev_cost, &mut curr_cost);
    std::mem::swap(&mut prev_steps, &mut curr_steps);
    for &ai in &a[1..] {
        // Column 0: only the up predecessor exists.
        let (up_c, up_s) = (prev_cost[0], prev_steps[0]);
        let (best, best_steps) = if up_c < f64::INFINITY {
            (up_c, up_s)
        } else {
            (f64::INFINITY, 0)
        };
        let mut left_c = best + ai.dist(b[0]);
        let mut left_s = best_steps + 1;
        curr_cost[0] = left_c;
        curr_steps[0] = left_s;
        // The up value of column j-1 is the diagonal of column j. The
        // zip walk keeps the inner loop free of bounds checks.
        let mut diag_c = up_c;
        let mut diag_s = up_s;
        let ups = prev_cost[1..].iter().zip(&prev_steps[1..]);
        let outs = curr_cost[1..].iter_mut().zip(curr_steps[1..].iter_mut());
        for (((&up_c, &up_s), bj), (cc, cs)) in ups.zip(&b[1..]).zip(outs) {
            let local = ai.dist(*bj);
            let mut best = f64::INFINITY;
            let mut best_steps = 0;
            if up_c < best {
                best = up_c;
                best_steps = up_s;
            }
            if left_c < best {
                best = left_c;
                best_steps = left_s;
            }
            if diag_c < best {
                best = diag_c;
                best_steps = diag_s;
            }
            left_c = best + local;
            left_s = best_steps + 1;
            *cc = left_c;
            *cs = left_s;
            diag_c = up_c;
            diag_s = up_s;
        }
        std::mem::swap(&mut prev_cost, &mut curr_cost);
        std::mem::swap(&mut prev_steps, &mut curr_steps);
    }
    // The final row lives in `prev_*` after the last swap.
    prev_cost[m - 1] / prev_steps[m - 1] as f64
}

/// Resamples a polyline to `k` points spaced uniformly by arc length.
/// Degenerate inputs (single point, zero length) repeat the first
/// point. Degenerate `k` has a defined result too: `k == 0` yields an
/// empty polyline and `k == 1` the path's start point — the
/// `total / (k - 1)` spacing is only computed for `k >= 2`, so no
/// `inf` step (or underflowing `k - 1` cast) can reach the distance
/// computations downstream.
pub fn resample(path: &[Vec2], k: usize) -> Vec<Vec2> {
    if path.is_empty() || k == 0 {
        return Vec::new();
    }
    if k == 1 {
        return vec![path[0]];
    }
    let total: f64 = path.windows(2).map(|w| w[0].dist(w[1])).sum();
    if total <= 0.0 || path.len() < 2 {
        return vec![path[0]; k];
    }
    let mut out = Vec::with_capacity(k);
    let step = total / (k - 1) as f64;
    let mut target = 0.0;
    let mut seg = 0usize;
    let mut seg_start_s = 0.0;
    for _ in 0..k {
        // Advance to the segment containing `target`.
        while seg + 1 < path.len() - 1
            && seg_start_s + path[seg].dist(path[seg + 1]) < target - 1e-12
        {
            seg_start_s += path[seg].dist(path[seg + 1]);
            seg += 1;
        }
        let seg_len = path[seg].dist(path[seg + 1]);
        let t = if seg_len > 0.0 {
            ((target - seg_start_s) / seg_len).clamp(0.0, 1.0)
        } else {
            0.0
        };
        out.push(path[seg].lerp(path[seg + 1], t));
        target += step;
    }
    out
}

/// Normalizes a path into a canonical *shape*: resampled to `k` points,
/// translated so it starts at the origin, scaled to unit total length.
pub fn normalize_shape(path: &[Vec2], k: usize) -> Vec<Vec2> {
    let pts = resample(path, k);
    if pts.is_empty() {
        return pts;
    }
    let origin = pts[0];
    let total: f64 = pts.windows(2).map(|w| w[0].dist(w[1])).sum();
    let scale = if total > 1e-9 { 1.0 / total } else { 1.0 };
    pts.iter().map(|&p| (p - origin) * scale).collect()
}

/// Shape distance between two paths: DTW over their normalized shapes.
/// Lower = more similar; identical shapes (up to translation and scale)
/// give ~0.
pub fn shape_distance(a: &[Vec2], b: &[Vec2], k: usize) -> f64 {
    dtw_distance(&normalize_shape(a, k), &normalize_shape(b, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, dx: f64, dy: f64) -> Vec<Vec2> {
        (0..n)
            .map(|i| Vec2::new(i as f64 * dx, i as f64 * dy))
            .collect()
    }

    fn u_turn(n: usize) -> Vec<Vec2> {
        // Right, half-circle, left.
        let mut p: Vec<Vec2> = (0..n).map(|i| Vec2::new(i as f64, 0.0)).collect();
        let cx = n as f64 - 1.0;
        for k in 1..=8 {
            let a = std::f64::consts::PI * k as f64 / 8.0;
            p.push(Vec2::new(cx + 3.0 * a.sin(), 3.0 - 3.0 * a.cos()));
        }
        for i in 0..n {
            p.push(Vec2::new(cx - i as f64, 6.0));
        }
        p
    }

    /// The original full-matrix DP, kept as the reference the rolling
    /// two-row implementation must match bit-for-bit.
    fn dtw_distance_full_matrix(a: &[Vec2], b: &[Vec2]) -> f64 {
        let (n, m) = (a.len(), b.len());
        if n == 0 || m == 0 {
            return f64::INFINITY;
        }
        let idx = |i: usize, j: usize| i * m + j;
        let mut cost = vec![f64::INFINITY; n * m];
        let mut steps = vec![0u32; n * m];
        cost[idx(0, 0)] = a[0].dist(b[0]);
        steps[idx(0, 0)] = 1;
        for i in 0..n {
            for j in 0..m {
                if i == 0 && j == 0 {
                    continue;
                }
                let local = a[i].dist(b[j]);
                let mut best = f64::INFINITY;
                let mut best_steps = 0;
                if i > 0 && cost[idx(i - 1, j)] < best {
                    best = cost[idx(i - 1, j)];
                    best_steps = steps[idx(i - 1, j)];
                }
                if j > 0 && cost[idx(i, j - 1)] < best {
                    best = cost[idx(i, j - 1)];
                    best_steps = steps[idx(i, j - 1)];
                }
                if i > 0 && j > 0 && cost[idx(i - 1, j - 1)] < best {
                    best = cost[idx(i - 1, j - 1)];
                    best_steps = steps[idx(i - 1, j - 1)];
                }
                cost[idx(i, j)] = best + local;
                steps[idx(i, j)] = best_steps + 1;
            }
        }
        cost[idx(n - 1, m - 1)] / steps[idx(n - 1, m - 1)] as f64
    }

    #[test]
    fn rolling_dp_is_bit_identical_to_full_matrix() {
        let shapes: Vec<Vec<Vec2>> = vec![
            line(1, 0.0, 0.0),
            line(2, 1.0, -0.5),
            line(7, 0.3, 2.0),
            line(40, 1.1, 0.0),
            u_turn(5),
            u_turn(17),
        ];
        for a in &shapes {
            for b in &shapes {
                let rolled = dtw_distance(a, b);
                let full = dtw_distance_full_matrix(a, b);
                assert_eq!(
                    rolled.to_bits(),
                    full.to_bits(),
                    "rolling {rolled} vs full-matrix {full} for |a|={} |b|={}",
                    a.len(),
                    b.len()
                );
            }
        }
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = line(10, 2.0, 1.0);
        assert!(dtw_distance(&a, &a) < 1e-12);
    }

    #[test]
    fn dtw_is_symmetric_and_positive() {
        let a = line(10, 2.0, 0.0);
        let b = u_turn(6);
        let d1 = dtw_distance(&a, &b);
        let d2 = dtw_distance(&b, &a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0);
    }

    #[test]
    fn dtw_handles_different_lengths() {
        let a = line(5, 1.0, 0.0);
        let b = line(50, 0.1, 0.0); // same segment, denser sampling
        assert!(dtw_distance(&a, &b) < 0.3);
    }

    #[test]
    fn empty_input_is_infinite() {
        assert_eq!(dtw_distance(&[], &line(3, 1.0, 0.0)), f64::INFINITY);
        assert_eq!(dtw_distance(&line(3, 1.0, 0.0), &[]), f64::INFINITY);
    }

    #[test]
    fn resample_preserves_endpoints_and_spacing() {
        let p = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 10.0),
        ];
        let r = resample(&p, 21);
        assert_eq!(r.len(), 21);
        assert!(r[0].dist(p[0]) < 1e-9);
        assert!(r[20].dist(p[2]) < 1e-9);
        // Uniform arc-length spacing: consecutive distances all ~1.
        for w in r.windows(2) {
            assert!((w[0].dist(w[1]) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn resample_degenerate_k_is_defined() {
        let p = vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)];
        // k == 0: empty polyline, no (k - 1) underflow.
        assert!(resample(&p, 0).is_empty());
        // k == 1: the start point, no inf step.
        let one = resample(&p, 1);
        assert_eq!(one.len(), 1);
        assert!(one[0].dist(p[0]) < 1e-12);
        // Degenerate k must not poison trajectory distances with NaN.
        let d = shape_distance(&p, &p, 1);
        assert!(d.is_finite(), "k = 1 shape distance is {d}");
        assert!(!shape_distance(&p, &u_turn(5), 1).is_nan());
    }

    #[test]
    fn resample_degenerate_path() {
        let p = vec![Vec2::new(3.0, 4.0)];
        let r = resample(&p, 5);
        assert_eq!(r.len(), 5);
        assert!(r.iter().all(|q| q.dist(p[0]) < 1e-12));
    }

    #[test]
    fn normalized_shape_is_translation_and_scale_invariant() {
        let a = line(20, 1.0, 0.5);
        let b: Vec<Vec2> = line(20, 3.0, 1.5) // scaled x3
            .into_iter()
            .map(|p| p + Vec2::new(100.0, -40.0)) // translated
            .collect();
        assert!(shape_distance(&a, &b, 32) < 1e-9);
    }

    #[test]
    fn shape_distance_separates_maneuvers() {
        let straight = line(30, 2.0, 0.0);
        let turn = u_turn(15);
        let another_straight = line(25, 0.0, 3.0); // vertical line
                                                   // A straight sketch matches straight tracks (any direction,
                                                   // after... note: no rotation invariance, so direction matters).
        let d_same = shape_distance(&straight, &line(40, 1.5, 0.0), 32);
        let d_turn = shape_distance(&straight, &turn, 32);
        assert!(d_same < d_turn, "straight {d_same} vs u-turn {d_turn}");
        // Rotation is NOT factored out: a vertical line differs from a
        // horizontal one (sketches are drawn in image space).
        let d_rot = shape_distance(&straight, &another_straight, 32);
        assert!(d_rot > d_same);
    }

    #[test]
    fn dtw_triangle_like_consistency() {
        // Not a metric, but sanity: d(a,c) should not exceed
        // d(a,b)+d(b,c) wildly for these smooth curves.
        let a = line(20, 1.0, 0.0);
        let b = u_turn(10);
        let c = line(20, 0.0, 1.0);
        let ab = dtw_distance(&a, &b);
        let bc = dtw_distance(&b, &c);
        let ac = dtw_distance(&a, &c);
        assert!(ac <= (ab + bc) * 2.0);
    }
}
