//! # tsvr-trajectory
//!
//! Trajectory modeling and semantic event features (paper §3.2–§5.1).
//!
//! Takes the vehicle tracks produced by `tsvr-vision` and turns them into
//! the retrieval dataset the learning framework operates on:
//!
//! * [`model`] — least-squares polynomial models of a track's `x(t)` /
//!   `y(t)` centroid motion (paper Eq. 1–2, Fig. 2) with tangent
//!   velocities from the first derivative;
//! * [`checkpoint`] — resampling of tracks on the global checkpoint grid
//!   (every 5 frames in the paper) and the per-checkpoint property
//!   vector `α_i = [1/mdist_i, vdiff_i, θ_i]` of §4;
//! * [`window`] — sliding-window extraction of Video Sequences (bags)
//!   and the Trajectory Sequences (instances) they contain (§5.1,
//!   Fig. 4), producing the [`window::Dataset`] consumed by `tsvr-mil`;
//! * [`dtw`] — dynamic-time-warping shape matching between trajectories
//!   (the matcher behind the §7 query-by-sketch extension).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod dtw;
pub mod model;
pub mod window;

pub use checkpoint::{CheckpointSeries, FeatureConfig};
pub use window::{Dataset, TrajectorySequence, VideoSequence, WindowConfig};
