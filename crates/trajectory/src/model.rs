//! Polynomial trajectory models (paper §3.2).
//!
//! "We can approximate the trajectory of a vehicle by using the
//! least-square curve fitting" — each coordinate of the centroid series
//! is fit with a k-th degree polynomial in the frame index, and the
//! first derivative gives the tangent (velocity) at any time.

use tsvr_linalg::polyfit::{self, Polynomial};
use tsvr_linalg::LinalgError;
use tsvr_sim::Vec2;
use tsvr_vision::Track;

/// A fitted parametric trajectory `(x(t), y(t))` with `t` = frame index.
#[derive(Debug, Clone)]
pub struct TrajectoryModel {
    /// Polynomial for the x coordinate.
    pub x: Polynomial,
    /// Polynomial for the y coordinate.
    pub y: Polynomial,
    /// Fitted degree.
    pub degree: usize,
    /// First and last frame of the underlying track.
    pub frame_span: (u32, u32),
    /// Root-mean-square fitting residual over the track points, px.
    pub rms_residual: f64,
}

impl TrajectoryModel {
    /// Fits a degree-`k` model to a track's centroid series.
    ///
    /// The paper demonstrates a 4th-degree fit (Fig. 2); shorter tracks
    /// automatically reduce the degree so the system stays
    /// well-determined.
    pub fn fit(track: &Track, degree: usize) -> Result<TrajectoryModel, LinalgError> {
        if track.points.is_empty() {
            return Err(LinalgError::EmptyInput);
        }
        let ts: Vec<f64> = track.points.iter().map(|p| p.frame as f64).collect();
        let xs: Vec<f64> = track.points.iter().map(|p| p.centroid.x).collect();
        let ys: Vec<f64> = track.points.iter().map(|p| p.centroid.y).collect();
        let degree = degree.min(ts.len().saturating_sub(1));
        let _span = tsvr_obs::span!("trajectory.polyfit");
        tsvr_obs::counter!("trajectory.polyfit.solves").add(2);
        let px = polyfit::fit(&ts, &xs, degree)?;
        let py = polyfit::fit(&ts, &ys, degree)?;
        let sse = px.sse(&ts, &xs) + py.sse(&ts, &ys);
        let rms = (sse / ts.len() as f64).sqrt();
        Ok(TrajectoryModel {
            x: px,
            y: py,
            degree,
            frame_span: (track.start_frame(), track.end_frame()),
            rms_residual: rms,
        })
    }

    /// Smoothed position at a frame.
    pub fn position(&self, frame: f64) -> Vec2 {
        Vec2::new(self.x.eval(frame), self.y.eval(frame))
    }

    /// Tangent velocity vector at a frame (px/frame) — the first
    /// derivative of the fitted curve.
    pub fn velocity(&self, frame: f64) -> Vec2 {
        Vec2::new(
            self.x.derivative().eval(frame),
            self.y.derivative().eval(frame),
        )
    }

    /// Speed (tangent magnitude) at a frame.
    pub fn speed(&self, frame: f64) -> f64 {
        self.velocity(frame).norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvr_sim::Aabb;
    use tsvr_vision::TrackPoint;

    fn track_from_fn(frames: std::ops::Range<u32>, f: impl Fn(f64) -> Vec2) -> Track {
        let points: Vec<TrackPoint> = frames
            .map(|fr| {
                let c = f(fr as f64);
                TrackPoint {
                    frame: fr,
                    centroid: c,
                    mbr: Aabb::from_corners(c, c),
                    coasted: false,
                }
            })
            .collect();
        Track {
            id: 1,
            points,
            stats: Default::default(),
        }
    }

    #[test]
    fn fits_straight_motion_exactly() {
        let t = track_from_fn(0..30, |f| Vec2::new(10.0 + 3.0 * f, 100.0));
        let m = TrajectoryModel::fit(&t, 4).unwrap();
        assert!(m.rms_residual < 1e-6, "rms {}", m.rms_residual);
        let v = m.velocity(15.0);
        assert!((v.x - 3.0).abs() < 1e-6);
        assert!(v.y.abs() < 1e-6);
        assert!((m.speed(15.0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn fits_curved_motion() {
        // Quadratic arc.
        let t = track_from_fn(0..40, |f| Vec2::new(4.0 * f, 100.0 + 0.05 * f * f));
        let m = TrajectoryModel::fit(&t, 4).unwrap();
        assert!(m.rms_residual < 1e-6);
        // dy/dt = 0.1 t.
        let v = m.velocity(20.0);
        assert!((v.y - 2.0).abs() < 1e-5, "vy {}", v.y);
    }

    #[test]
    fn smooths_jittered_centroids() {
        // Line plus deterministic +-1 px alternating jitter (models
        // segmentation noise).
        let t = track_from_fn(0..60, |f| {
            let n = if (f as u32).is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            Vec2::new(5.0 + 2.0 * f + n, 120.0 + n)
        });
        let m = TrajectoryModel::fit(&t, 3).unwrap();
        // The fitted curve should be much closer to the true line than
        // the jittered samples are.
        let p = m.position(30.0);
        assert!((p.x - 65.0).abs() < 0.5);
        assert!((p.y - 120.0).abs() < 0.5);
        assert!(m.rms_residual < 1.6);
    }

    #[test]
    fn degree_reduced_for_short_tracks() {
        let t = track_from_fn(0..3, |f| Vec2::new(f, f));
        let m = TrajectoryModel::fit(&t, 4).unwrap();
        assert_eq!(m.degree, 2);
    }

    #[test]
    fn empty_track_rejected() {
        let t = Track {
            id: 1,
            points: vec![],
            stats: Default::default(),
        };
        assert!(TrajectoryModel::fit(&t, 4).is_err());
    }

    #[test]
    fn velocity_direction_matches_motion() {
        // Diagonal motion: tangent direction must match.
        let t = track_from_fn(0..30, |f| Vec2::new(2.0 * f, 100.0 + 1.0 * f));
        let m = TrajectoryModel::fit(&t, 2).unwrap();
        let v = m.velocity(15.0);
        assert!((v.x - 2.0).abs() < 1e-6);
        assert!((v.y - 1.0).abs() < 1e-6);
        // Speed is the tangent magnitude.
        assert!((m.speed(15.0) - (5.0f64).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn single_point_track_fits_constant() {
        let t = track_from_fn(5..6, |_| Vec2::new(42.0, 24.0));
        let m = TrajectoryModel::fit(&t, 4).unwrap();
        assert_eq!(m.degree, 0);
        assert_eq!(m.position(5.0), Vec2::new(42.0, 24.0));
        assert_eq!(m.speed(5.0), 0.0);
    }

    #[test]
    fn frame_span_recorded() {
        let t = track_from_fn(10..25, |f| Vec2::new(f, 0.0));
        let m = TrajectoryModel::fit(&t, 2).unwrap();
        assert_eq!(m.frame_span, (10, 24));
    }
}
