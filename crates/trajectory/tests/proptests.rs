//! Property-based tests for feature extraction and windowing, driven by
//! the in-tree seeded harness (`tsvr_sim::check`).

use tsvr_sim::check;
use tsvr_sim::{Aabb, Pcg32, Vec2};
use tsvr_trajectory::checkpoint::{build_series, Alpha, FeatureConfig};
use tsvr_trajectory::dtw::{dtw_distance, normalize_shape, resample, shape_distance};
use tsvr_trajectory::{Dataset, WindowConfig};
use tsvr_vision::{Track, TrackPoint};

fn track_from(id: u64, start: u32, steps: &[(f64, f64)]) -> Track {
    let mut pos = Vec2::new(50.0, 100.0);
    let mut points = Vec::new();
    for (i, &(dx, dy)) in steps.iter().enumerate() {
        pos = pos + Vec2::new(dx, dy);
        points.push(TrackPoint {
            frame: start + i as u32,
            centroid: pos,
            mbr: Aabb::from_corners(pos, pos),
            coasted: false,
        });
    }
    Track {
        id,
        points,
        stats: Default::default(),
    }
}

fn steps(rng: &mut Pcg32, n: usize, dx: (f64, f64), dy: (f64, f64)) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| (rng.uniform(dx.0, dx.1), rng.uniform(dy.0, dy.1)))
        .collect()
}

fn path(rng: &mut Pcg32, n: usize, lo: f64, hi: f64) -> Vec<Vec2> {
    (0..n)
        .map(|_| Vec2::new(rng.uniform(lo, hi), rng.uniform(lo, hi)))
        .collect()
}

#[test]
fn alphas_are_always_finite_and_nonnegative() {
    check::cases(48, |case, rng| {
        let n = check::len_in(rng, 20, 120);
        let s = steps(rng, n, (-4.0, 6.0), (-2.0, 2.0));
        let start = rng.uniform_u32(20);
        let t = track_from(1, start, &s);
        let series = build_series(&[t], &FeatureConfig::default());
        for ts in &series {
            for a in &ts.alphas {
                assert!(
                    a.inv_mdist.is_finite() && a.inv_mdist >= 0.0,
                    "case {case}: inv_mdist {}",
                    a.inv_mdist
                );
                assert!(
                    a.vdiff.is_finite() && a.vdiff >= 0.0,
                    "case {case}: vdiff {}",
                    a.vdiff
                );
                assert!(a.theta.is_finite(), "case {case}: theta not finite");
                assert!(
                    (0.0..=std::f64::consts::PI).contains(&a.theta),
                    "case {case}: theta {}",
                    a.theta
                );
            }
        }
    });
}

#[test]
fn normalized_alpha_in_unit_cube() {
    check::cases(128, |case, rng| {
        let a = Alpha {
            inv_mdist: rng.uniform(0.0, 10.0),
            vdiff: rng.uniform(0.0, 50.0),
            theta: rng.uniform(0.0, 4.0),
        };
        let n = a.normalized(&FeatureConfig::default());
        for v in n {
            assert!((0.0..=1.0).contains(&v), "case {case}: {v} out of cube");
        }
    });
}

#[test]
fn mdist_is_symmetric_between_two_tracks() {
    check::cases(48, |case, rng| {
        let n = check::len_in(rng, 30, 60);
        let steps_a = steps(rng, n, (0.5, 5.0), (-1.0, 1.0));
        let offset_y = rng.uniform(5.0, 60.0);
        let a = track_from(1, 0, &steps_a);
        let b = {
            let mut t = track_from(2, 0, &steps_a);
            for p in &mut t.points {
                p.centroid.y += offset_y;
            }
            t
        };
        let series = build_series(&[a, b], &FeatureConfig::default());
        assert_eq!(series.len(), 2, "case {case}");
        for (x, y) in series[0].alphas.iter().zip(&series[1].alphas) {
            assert!(
                (x.inv_mdist - y.inv_mdist).abs() < 1e-12,
                "case {case}: mdist asymmetric"
            );
        }
    });
}

#[test]
fn windows_have_exact_size_and_full_coverage() {
    check::cases(48, |case, rng| {
        let len = 30 + rng.uniform_u32(170);
        let window = check::len_in(rng, 2, 6);
        let s: Vec<(f64, f64)> = (0..len).map(|_| (3.0, 0.0)).collect();
        let t = track_from(1, 0, &s);
        let cfg = WindowConfig {
            window_size: window,
            stride: window,
            features: FeatureConfig::default(),
        };
        let ds = Dataset::build(&[t], cfg);
        for w in &ds.windows {
            for ts in &w.sequences {
                assert_eq!(ts.alphas.len(), window, "case {case}");
                assert_eq!(ts.feature_vector().len(), window * 3, "case {case}");
            }
            // Frame span matches window_size * rate.
            assert_eq!(
                (w.end_frame - w.start_frame + 1) as usize,
                window * 5,
                "case {case}"
            );
        }
        assert_eq!(ds.feature_dim(), window * 3, "case {case}");
    });
}

#[test]
fn stride_one_windows_nest_stride_w_windows() {
    check::cases(32, |case, rng| {
        let len = 60 + rng.uniform_u32(90);
        let s: Vec<(f64, f64)> = (0..len).map(|_| (2.5, 0.0)).collect();
        let t = track_from(1, 0, &s);
        let dense = Dataset::build(
            std::slice::from_ref(&t),
            WindowConfig {
                stride: 1,
                ..WindowConfig::default()
            },
        );
        let sparse = Dataset::build(&[t], WindowConfig::default());
        // Every sparse window start appears among the dense ones.
        let dense_starts: Vec<u64> = dense.windows.iter().map(|w| w.start_frame).collect();
        for w in &sparse.windows {
            assert!(
                dense_starts.contains(&w.start_frame),
                "case {case}: start {} not nested",
                w.start_frame
            );
        }
        assert!(
            dense.window_count() >= sparse.window_count(),
            "case {case}: dense has fewer windows"
        );
    });
}

#[test]
fn dtw_identity_and_symmetry() {
    check::cases(96, |case, rng| {
        let na = check::len_in(rng, 2, 30);
        let a = path(rng, na, -50.0, 50.0);
        let nb = check::len_in(rng, 2, 30);
        let b = path(rng, nb, -50.0, 50.0);
        assert!(dtw_distance(&a, &a) < 1e-9, "case {case}: d(a,a) != 0");
        let d1 = dtw_distance(&a, &b);
        let d2 = dtw_distance(&b, &a);
        assert!((d1 - d2).abs() < 1e-9, "case {case}: not symmetric");
        assert!(d1 >= 0.0, "case {case}: negative distance");
    });
}

#[test]
fn resample_endpoints_and_count() {
    check::cases(96, |case, rng| {
        let n = check::len_in(rng, 2, 20);
        let p = path(rng, n, -100.0, 100.0);
        let k = check::len_in(rng, 2, 40);
        let r = resample(&p, k);
        assert_eq!(r.len(), k, "case {case}");
        assert!(r[0].dist(p[0]) < 1e-6, "case {case}: start moved");
        assert!(
            r[k - 1].dist(*p.last().unwrap()) < 1e-6,
            "case {case}: end moved"
        );
    });
}

#[test]
fn shape_distance_invariant_to_similarity_transform() {
    check::cases(96, |case, rng| {
        let n = check::len_in(rng, 3, 15);
        let a = path(rng, n, -20.0, 20.0);
        // Skip degenerate all-same-point paths.
        let total: f64 = a.windows(2).map(|w| w[0].dist(w[1])).sum();
        if total <= 1.0 {
            return;
        }
        let scale = rng.uniform(0.2, 5.0);
        let tx = rng.uniform(-200.0, 200.0);
        let ty = rng.uniform(-200.0, 200.0);
        let b: Vec<Vec2> = a.iter().map(|&p| p * scale + Vec2::new(tx, ty)).collect();
        let d = shape_distance(&a, &b, 24);
        assert!(d < 1e-6, "case {case}: shape distance {d}");
    });
}

#[test]
fn normalize_shape_unit_length() {
    check::cases(96, |case, rng| {
        let m = check::len_in(rng, 2, 15);
        let p = path(rng, m, -30.0, 30.0);
        let total: f64 = p.windows(2).map(|w| w[0].dist(w[1])).sum();
        if total <= 0.5 {
            return;
        }
        let n = normalize_shape(&p, 16);
        assert!(n[0].dist(Vec2::ZERO) < 1e-9, "case {case}: not at origin");
        let len: f64 = n.windows(2).map(|w| w[0].dist(w[1])).sum();
        assert!((len - 1.0).abs() < 1e-6, "case {case}: unit length, got {len}");
    });
}
