//! Property-based tests for feature extraction and windowing.

use proptest::prelude::*;
use tsvr_sim::{Aabb, Vec2};
use tsvr_trajectory::checkpoint::{build_series, Alpha, FeatureConfig};
use tsvr_trajectory::dtw::{dtw_distance, normalize_shape, resample, shape_distance};
use tsvr_trajectory::{Dataset, WindowConfig};
use tsvr_vision::{Track, TrackPoint};

fn track_from(id: u64, start: u32, steps: &[(f64, f64)]) -> Track {
    let mut pos = Vec2::new(50.0, 100.0);
    let mut points = Vec::new();
    for (i, &(dx, dy)) in steps.iter().enumerate() {
        pos = pos + Vec2::new(dx, dy);
        points.push(TrackPoint {
            frame: start + i as u32,
            centroid: pos,
            mbr: Aabb::from_corners(pos, pos),
            coasted: false,
        });
    }
    Track {
        id,
        points,
        stats: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn alphas_are_always_finite_and_nonnegative(
        steps in prop::collection::vec((-4.0f64..6.0, -2.0f64..2.0), 20..120),
        start in 0u32..20,
    ) {
        let t = track_from(1, start, &steps);
        let series = build_series(&[t], &FeatureConfig::default());
        for s in &series {
            for a in &s.alphas {
                prop_assert!(a.inv_mdist.is_finite() && a.inv_mdist >= 0.0);
                prop_assert!(a.vdiff.is_finite() && a.vdiff >= 0.0);
                prop_assert!(a.theta.is_finite());
                prop_assert!((0.0..=std::f64::consts::PI).contains(&a.theta));
            }
        }
    }

    #[test]
    fn normalized_alpha_in_unit_cube(inv in 0.0f64..10.0, vd in 0.0f64..50.0, th in 0.0f64..4.0) {
        let a = Alpha { inv_mdist: inv, vdiff: vd, theta: th };
        let n = a.normalized(&FeatureConfig::default());
        for v in n {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn mdist_is_symmetric_between_two_tracks(
        steps_a in prop::collection::vec((0.5f64..5.0, -1.0f64..1.0), 30..60),
        offset_y in 5.0f64..60.0,
    ) {
        let a = track_from(1, 0, &steps_a);
        let b = {
            let mut t = track_from(2, 0, &steps_a);
            for p in &mut t.points {
                p.centroid.y += offset_y;
            }
            t
        };
        let series = build_series(&[a, b], &FeatureConfig::default());
        prop_assert_eq!(series.len(), 2);
        for (x, y) in series[0].alphas.iter().zip(&series[1].alphas) {
            prop_assert!((x.inv_mdist - y.inv_mdist).abs() < 1e-12);
        }
    }

    #[test]
    fn windows_have_exact_size_and_full_coverage(
        len in 30u32..200,
        window in 2usize..6,
    ) {
        let steps: Vec<(f64, f64)> = (0..len).map(|_| (3.0, 0.0)).collect();
        let t = track_from(1, 0, &steps);
        let cfg = WindowConfig {
            window_size: window,
            stride: window,
            features: FeatureConfig::default(),
        };
        let ds = Dataset::build(&[t], cfg);
        for w in &ds.windows {
            for ts in &w.sequences {
                prop_assert_eq!(ts.alphas.len(), window);
                prop_assert_eq!(ts.feature_vector().len(), window * 3);
            }
            // Frame span matches window_size * rate.
            prop_assert_eq!((w.end_frame - w.start_frame + 1) as usize, window * 5);
        }
        prop_assert_eq!(ds.feature_dim(), window * 3);
    }

    #[test]
    fn stride_one_windows_nest_stride_w_windows(len in 60u32..150) {
        let steps: Vec<(f64, f64)> = (0..len).map(|_| (2.5, 0.0)).collect();
        let t = track_from(1, 0, &steps);
        let dense = Dataset::build(std::slice::from_ref(&t), WindowConfig { stride: 1, ..WindowConfig::default() });
        let sparse = Dataset::build(&[t], WindowConfig::default());
        // Every sparse window start appears among the dense ones.
        let dense_starts: Vec<u32> = dense.windows.iter().map(|w| w.start_frame).collect();
        for w in &sparse.windows {
            prop_assert!(dense_starts.contains(&w.start_frame));
        }
        prop_assert!(dense.window_count() >= sparse.window_count());
    }

    #[test]
    fn dtw_identity_and_symmetry(
        pts in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..30),
        pts2 in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..30),
    ) {
        let a: Vec<Vec2> = pts.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let b: Vec<Vec2> = pts2.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        prop_assert!(dtw_distance(&a, &a) < 1e-9);
        let d1 = dtw_distance(&a, &b);
        let d2 = dtw_distance(&b, &a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 >= 0.0);
    }

    #[test]
    fn resample_endpoints_and_count(
        pts in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..20),
        k in 2usize..40,
    ) {
        let path: Vec<Vec2> = pts.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let r = resample(&path, k);
        prop_assert_eq!(r.len(), k);
        prop_assert!(r[0].dist(path[0]) < 1e-6);
        prop_assert!(r[k - 1].dist(*path.last().unwrap()) < 1e-6);
    }

    #[test]
    fn shape_distance_invariant_to_similarity_transform(
        pts in prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 3..15),
        scale in 0.2f64..5.0,
        tx in -200.0f64..200.0,
        ty in -200.0f64..200.0,
    ) {
        let a: Vec<Vec2> = pts.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        // Skip degenerate all-same-point paths.
        let total: f64 = a.windows(2).map(|w| w[0].dist(w[1])).sum();
        prop_assume!(total > 1.0);
        let b: Vec<Vec2> = a.iter().map(|&p| p * scale + Vec2::new(tx, ty)).collect();
        prop_assert!(shape_distance(&a, &b, 24) < 1e-6);
    }

    #[test]
    fn normalize_shape_unit_length(
        pts in prop::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 2..15),
    ) {
        let path: Vec<Vec2> = pts.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let total: f64 = path.windows(2).map(|w| w[0].dist(w[1])).sum();
        prop_assume!(total > 0.5);
        let n = normalize_shape(&path, 16);
        prop_assert!(n[0].dist(Vec2::ZERO) < 1e-9, "starts at origin");
        let len: f64 = n.windows(2).map(|w| w[0].dist(w[1])).sum();
        prop_assert!((len - 1.0).abs() < 1e-6, "unit length, got {len}");
    }
}
