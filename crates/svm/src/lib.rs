//! # tsvr-svm
//!
//! Support Vector Machine substrate — specifically the One-class ν-SVM of
//! Schölkopf et al. that the paper adopts as its core learning algorithm
//! (§5.2, citing \[18\]).
//!
//! No SVM crates are available offline, so the solver is built from
//! scratch:
//!
//! * [`kernel`] — Mercer kernels. The paper's Eq. 6 prints
//!   `K(u,v) = exp(||u−v|| / 2σ)`, which grows with distance and is not a
//!   valid RBF kernel; this is treated as a typo for the Gaussian
//!   `exp(−||u−v||² / 2σ²)` (see DESIGN.md). A Laplacian variant
//!   `exp(−||u−v||/σ)` — the other plausible reading — is provided too.
//! * [`oneclass`] — the ν-parameterized one-class SVM trained by
//!   Sequential Minimal Optimization with maximal-violating-pair working
//!   set selection (the same optimizer family libsvm used in 2007);
//! * [`svc`] — a binary soft-margin C-SVM, the building block of the
//!   MI-SVM baseline (\[16\] in the paper's review).
//!
//! In the paper's notation the outlier-fraction parameter is `δ`
//! (Eq. 7–9); the SVM literature calls it `ν`. The API uses `nu`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod error;
pub mod kernel;
pub mod oneclass;
pub mod svc;

pub use block::FeatureBlock;
pub use error::SvmError;
pub use kernel::Kernel;
pub use oneclass::{OneClassModel, OneClassSvm};
pub use svc::{Svc, SvcModel};
