//! Mercer kernels (paper Eq. 5–6).
//!
//! The batch entry points ([`Kernel::gram`], [`Kernel::gram_extend`],
//! [`Kernel::eval_block`]) run over a [`FeatureBlock`] — one contiguous
//! row-major buffer — so the distance loops stream memory linearly, and
//! split the RBF/Laplacian evaluation into a distance pass followed by
//! a vectorizable `exp` pass over the whole output row. Both
//! restructurings preserve the exact per-element arithmetic of
//! [`Kernel::eval`], so every batch value is bit-identical to the
//! corresponding scalar call.

use crate::block::FeatureBlock;
use crate::SvmError;
use tsvr_linalg::vecops;

/// A kernel function `K(u, v) = θ(u) · θ(v)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Linear kernel `u · v`.
    Linear,
    /// Gaussian RBF `exp(−γ ||u−v||²)`.
    ///
    /// The paper's Eq. 6 prints `exp(||u−v||/2σ)`; the standard Gaussian
    /// with `γ = 1/(2σ²)` is the intended kernel (see crate docs).
    Rbf {
        /// Width parameter γ.
        gamma: f64,
    },
    /// Laplacian `exp(−||u−v|| / σ)` — the alternative literal reading
    /// of Eq. 6 with the sign fixed.
    Laplacian {
        /// Width parameter σ.
        sigma: f64,
    },
    /// Polynomial `(γ u·v + c₀)^d`.
    Polynomial {
        /// Scale γ.
        gamma: f64,
        /// Offset c₀.
        coef0: f64,
        /// Degree d.
        degree: u32,
    },
    /// Sigmoid `tanh(γ u·v + c₀)` (not Mercer for all parameters; kept
    /// for completeness).
    Sigmoid {
        /// Scale γ.
        gamma: f64,
        /// Offset c₀.
        coef0: f64,
    },
}

impl Kernel {
    /// Gaussian RBF parameterized by the paper's σ: `γ = 1/(2σ²)`.
    pub fn rbf_sigma(sigma: f64) -> Result<Kernel, SvmError> {
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(SvmError::InvalidKernelParam(format!("sigma = {sigma}")));
        }
        Ok(Kernel::Rbf {
            gamma: 1.0 / (2.0 * sigma * sigma),
        })
    }

    /// Validates kernel parameters.
    pub fn validate(&self) -> Result<(), SvmError> {
        let bad = |msg: String| Err(SvmError::InvalidKernelParam(msg));
        match *self {
            Kernel::Linear => Ok(()),
            Kernel::Rbf { gamma } => {
                if gamma > 0.0 && gamma.is_finite() {
                    Ok(())
                } else {
                    bad(format!("gamma = {gamma}"))
                }
            }
            Kernel::Laplacian { sigma } => {
                if sigma > 0.0 && sigma.is_finite() {
                    Ok(())
                } else {
                    bad(format!("sigma = {sigma}"))
                }
            }
            Kernel::Polynomial { gamma, degree, .. } => {
                if gamma > 0.0 && degree >= 1 {
                    Ok(())
                } else {
                    bad(format!("gamma = {gamma}, degree = {degree}"))
                }
            }
            Kernel::Sigmoid { gamma, .. } => {
                if gamma > 0.0 {
                    Ok(())
                } else {
                    bad(format!("gamma = {gamma}"))
                }
            }
        }
    }

    /// Evaluates `K(u, v)`.
    #[inline]
    pub fn eval(&self, u: &[f64], v: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => vecops::dot(u, v),
            Kernel::Rbf { gamma } => (-gamma * vecops::sq_dist(u, v)).exp(),
            Kernel::Laplacian { sigma } => (-vecops::dist(u, v) / sigma).exp(),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (gamma * vecops::dot(u, v) + coef0).powi(degree as i32),
            Kernel::Sigmoid { gamma, coef0 } => (gamma * vecops::dot(u, v) + coef0).tanh(),
        }
    }

    /// Rough cost of one [`eval`](Self::eval) call in nanoseconds — a
    /// fused multiply-add per dimension plus a transcendental where the
    /// kernel has one. Drives the fork decision of the cost-hinted
    /// [`tsvr_par`] entry points; only the spawn heuristic depends on
    /// it, never a result.
    pub fn est_eval_ns(&self, dim: usize) -> u64 {
        let d = dim as u64;
        match *self {
            Kernel::Linear => d + 2,
            _ => d + 20,
        }
    }

    /// Writes `K(u, block.row(j))` for every row `j` into `out`
    /// (`out.len() == block.len()`). RBF and Laplacian run as a fused
    /// distance pass followed by one `exp` pass over the whole buffer —
    /// the exact operations `eval` applies per element, reordered across
    /// elements only, so each value is bit-identical to the scalar call.
    pub fn eval_block(&self, block: &FeatureBlock, u: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), block.len());
        match *self {
            Kernel::Rbf { gamma } => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = vecops::sq_dist(u, block.row(j));
                }
                for o in out.iter_mut() {
                    *o = (-gamma * *o).exp();
                }
            }
            Kernel::Laplacian { sigma } => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = vecops::sq_dist(u, block.row(j));
                }
                // `vecops::dist` is `sq_dist(..).sqrt()`, so the split
                // pass applies the same sqrt-then-exp per element.
                for o in out.iter_mut() {
                    *o = (-o.sqrt() / sigma).exp();
                }
            }
            _ => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = self.eval(u, block.row(j));
                }
            }
        }
    }

    /// Precomputes the full Gram matrix of a dataset (row-major,
    /// `n x n`). The rows are packed into a [`FeatureBlock`] so the
    /// distance loops run cache-linearly (a ragged input falls back to
    /// the nested-`Vec` walk with identical arithmetic). Upper-triangle
    /// rows are evaluated in parallel on the [`tsvr_par`] runtime (row
    /// `i` is an independent task, so the ragged row lengths
    /// load-balance across workers) and mirrored sequentially; every
    /// entry is the same `eval(i, j)` the sequential double loop
    /// computes, so the matrix is bit-identical regardless of the
    /// thread count.
    pub fn gram(&self, data: &[Vec<f64>]) -> Vec<f64> {
        // Anchor rows per parallel task. Batching rows amortizes the
        // one scratch allocation per task — per-row tasks spent ~10%
        // of small-matrix gram time in the allocator.
        const ROW_CHUNK: usize = 8;
        let n = data.len();
        tsvr_obs::counter!("svm.kernel.evals").add((n * (n + 1) / 2) as u64);
        let nchunks = n.div_ceil(ROW_CHUNK);
        let span = |c: usize| (c * ROW_CHUNK, (c * ROW_CHUNK + ROW_CHUNK).min(n));
        // Chunk c holds rows lo..hi concatenated; row i is K(i, j) for
        // j in i..n.
        let chunks: Vec<Vec<f64>> = match FeatureBlock::from_rows(data) {
            Ok(block) => {
                // Fork hint: the average task is ROW_CHUNK half-rows.
                let est =
                    (ROW_CHUNK as u64) * (n as u64 / 2 + 1) * self.est_eval_ns(block.dim());
                tsvr_par::par_map_index_est(nchunks, est, |c| {
                    let (lo, hi) = span(c);
                    let total: usize = (lo..hi).map(|i| n - i).sum();
                    let mut buf = vec![0.0; total];
                    let mut off = 0;
                    for i in lo..hi {
                        let len = n - i;
                        self.eval_suffix(&block, i, &mut buf[off..off + len]);
                        off += len;
                    }
                    buf
                })
            }
            Err(_) => tsvr_par::par_map_index(nchunks, |c| {
                let (lo, hi) = span(c);
                (lo..hi)
                    .flat_map(|i| (i..n).map(move |j| (i, j)))
                    .map(|(i, j)| self.eval(&data[i], &data[j]))
                    .collect()
            }),
        };
        let mut g = vec![0.0; n * n];
        for (c, buf) in chunks.iter().enumerate() {
            let (lo, hi) = span(c);
            let mut off = 0;
            for i in lo..hi {
                for (k, &v) in buf[off..off + (n - i)].iter().enumerate() {
                    let j = i + k;
                    g[i * n + j] = v;
                    g[j * n + i] = v;
                }
                off += n - i;
            }
        }
        g
    }

    /// `K(row_i, row_j)` for `j in i..n`, written to `out`
    /// (`out.len() == n - i`), with the fused RBF/Laplacian pass.
    fn eval_suffix(&self, block: &FeatureBlock, i: usize, out: &mut [f64]) {
        let u = block.row(i);
        match *self {
            Kernel::Rbf { gamma } => {
                for (off, o) in out.iter_mut().enumerate() {
                    *o = vecops::sq_dist(u, block.row(i + off));
                }
                for o in out.iter_mut() {
                    *o = (-gamma * *o).exp();
                }
            }
            Kernel::Laplacian { sigma } => {
                for (off, o) in out.iter_mut().enumerate() {
                    *o = vecops::sq_dist(u, block.row(i + off));
                }
                for o in out.iter_mut() {
                    *o = (-o.sqrt() / sigma).exp();
                }
            }
            _ => {
                for (off, o) in out.iter_mut().enumerate() {
                    *o = self.eval(u, block.row(i + off));
                }
            }
        }
    }

    /// Grows a Gram matrix incrementally: `old` must be this kernel's
    /// `old_n × old_n` Gram over `data[..old_n]`; the result is the full
    /// `n × n` Gram over `data`, computing only the entries that involve
    /// a new row (`j >= old_n`) and copying the rest. New entries use
    /// the same per-element arithmetic as [`gram`](Self::gram)
    /// (`K(u, v)` and `K(v, u)` are bit-identical for every kernel here:
    /// `x·y`, `(x−y)²` and `|x−y|` are all IEEE-commutative), so the
    /// result is bit-identical to a full recomputation — including NaN
    /// payloads, which flow through the same operations either way.
    /// A mismatched `old` shape falls back to the full computation.
    pub fn gram_extend(&self, data: &[Vec<f64>], old: &[f64], old_n: usize) -> Vec<f64> {
        let n = data.len();
        if old_n > n || old.len() != old_n * old_n {
            return self.gram(data);
        }
        let new_pairs = n * (n + 1) / 2 - old_n * (old_n + 1) / 2;
        tsvr_obs::counter!("svm.kernel.evals").add(new_pairs as u64);
        let mut g = vec![0.0; n * n];
        for i in 0..old_n {
            g[i * n..i * n + old_n].copy_from_slice(&old[i * old_n..(i + 1) * old_n]);
        }
        // One task per new row j, holding K(j, 0..=j).
        let rows: Vec<Vec<f64>> = match FeatureBlock::from_rows(data) {
            Ok(block) => {
                let est = (n as u64 / 2 + 1) * self.est_eval_ns(block.dim());
                tsvr_par::par_map_index_est(n - old_n, est, |k| {
                    let j = old_n + k;
                    let mut row = vec![0.0; j + 1];
                    self.eval_prefix(&block, j, &mut row);
                    row
                })
            }
            Err(_) => tsvr_par::par_map_index(n - old_n, |k| {
                let j = old_n + k;
                (0..=j).map(|i| self.eval(&data[j], &data[i])).collect()
            }),
        };
        for (k, row) in rows.iter().enumerate() {
            let j = old_n + k;
            for (i, &v) in row.iter().enumerate() {
                g[j * n + i] = v;
                g[i * n + j] = v;
            }
        }
        g
    }

    /// `K(row_j, row_i)` for `i in 0..=j`, written to `out`
    /// (`out.len() == j + 1`), with the fused RBF/Laplacian pass.
    fn eval_prefix(&self, block: &FeatureBlock, j: usize, out: &mut [f64]) {
        let u = block.row(j);
        match *self {
            Kernel::Rbf { gamma } => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = vecops::sq_dist(u, block.row(i));
                }
                for o in out.iter_mut() {
                    *o = (-gamma * *o).exp();
                }
            }
            Kernel::Laplacian { sigma } => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = vecops::sq_dist(u, block.row(i));
                }
                for o in out.iter_mut() {
                    *o = (-o.sqrt() / sigma).exp();
                }
            }
            _ => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.eval(u, block.row(i));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const U: [f64; 3] = [1.0, 2.0, 3.0];
    const V: [f64; 3] = [0.0, 2.0, 4.0];

    #[test]
    fn linear_is_dot() {
        assert_eq!(Kernel::Linear.eval(&U, &V), 16.0);
    }

    #[test]
    fn rbf_properties() {
        let k = Kernel::Rbf { gamma: 0.5 };
        // K(x,x) = 1.
        assert!((k.eval(&U, &U) - 1.0).abs() < 1e-12);
        // Symmetric, in (0,1], decreasing with distance.
        assert_eq!(k.eval(&U, &V), k.eval(&V, &U));
        let near = k.eval(&U, &[1.1, 2.0, 3.0]);
        let far = k.eval(&U, &[5.0, 2.0, 3.0]);
        assert!(near > far);
        assert!(far > 0.0 && near <= 1.0);
    }

    #[test]
    fn rbf_sigma_conversion() {
        let k = Kernel::rbf_sigma(2.0).unwrap();
        let Kernel::Rbf { gamma } = k else { panic!() };
        assert!((gamma - 1.0 / 8.0).abs() < 1e-12);
        assert!(Kernel::rbf_sigma(0.0).is_err());
        assert!(Kernel::rbf_sigma(-1.0).is_err());
        assert!(Kernel::rbf_sigma(f64::NAN).is_err());
    }

    #[test]
    fn laplacian_properties() {
        let k = Kernel::Laplacian { sigma: 1.0 };
        assert!((k.eval(&U, &U) - 1.0).abs() < 1e-12);
        let d = tsvr_linalg::vecops::dist(&U, &V);
        assert!((k.eval(&U, &V) - (-d).exp()).abs() < 1e-12);
    }

    #[test]
    fn polynomial_known_value() {
        let k = Kernel::Polynomial {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        assert_eq!(k.eval(&U, &V), 289.0); // (16+1)^2
    }

    #[test]
    fn sigmoid_bounded() {
        let k = Kernel::Sigmoid {
            gamma: 0.1,
            coef0: 0.0,
        };
        let v = k.eval(&U, &V);
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn validate_rejects_bad_params() {
        assert!(Kernel::Rbf { gamma: -1.0 }.validate().is_err());
        assert!(Kernel::Rbf {
            gamma: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(Kernel::Laplacian { sigma: 0.0 }.validate().is_err());
        assert!(Kernel::Polynomial {
            gamma: 1.0,
            coef0: 0.0,
            degree: 0
        }
        .validate()
        .is_err());
        assert!(Kernel::Linear.validate().is_ok());
        assert!(Kernel::Rbf { gamma: 0.5 }.validate().is_ok());
    }

    /// Deterministic pseudo-random vectors, with NaN/∞ planted when
    /// `poison` is set — the batch paths must carry them bit-exactly.
    fn random_rows(n: usize, dim: usize, salt: u64, poison: bool) -> Vec<Vec<f64>> {
        let mut state = salt.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| {
                        if poison && i % 5 == 3 && d == i % dim {
                            f64::NAN
                        } else {
                            next() * 3.0
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn all_kernels() -> Vec<Kernel> {
        vec![
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.7 },
            Kernel::Laplacian { sigma: 1.3 },
            Kernel::Polynomial {
                gamma: 0.5,
                coef0: 1.0,
                degree: 3,
            },
            Kernel::Sigmoid {
                gamma: 0.2,
                coef0: 0.1,
            },
        ]
    }

    #[test]
    fn gram_is_bit_identical_to_scalar_eval() {
        for poison in [false, true] {
            let data = random_rows(17, 5, 42, poison);
            for k in all_kernels() {
                let g = k.gram(&data);
                for i in 0..17 {
                    for j in i..17 {
                        let expected = k.eval(&data[i], &data[j]);
                        assert_eq!(
                            g[i * 17 + j].to_bits(),
                            expected.to_bits(),
                            "{k:?} entry ({i},{j}) poison={poison}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gram_extend_matches_full_recompute() {
        for poison in [false, true] {
            let data = random_rows(23, 4, 7, poison);
            for k in all_kernels() {
                // Grow the matrix in several steps, as the retraining
                // loop does, and compare against from-scratch at each.
                let mut g = k.gram(&data[..5]);
                for &upto in &[9, 14, 23] {
                    let old_n = (g.len() as f64).sqrt() as usize;
                    g = k.gram_extend(&data[..upto], &g, old_n);
                    let full = k.gram(&data[..upto]);
                    assert_eq!(g.len(), full.len());
                    for (a, b) in g.iter().zip(&full) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{k:?} poison={poison}");
                    }
                }
            }
        }
    }

    #[test]
    fn gram_extend_rejects_mismatched_old_shape() {
        let data = random_rows(6, 3, 9, false);
        let k = Kernel::Rbf { gamma: 0.5 };
        // Wrong length and old_n > n both fall back to the full gram.
        let full = k.gram(&data);
        assert_eq!(k.gram_extend(&data, &[0.0; 5], 2), full);
        assert_eq!(k.gram_extend(&data, &vec![0.0; 49], 7), full);
    }

    #[test]
    fn eval_block_matches_scalar_eval() {
        let data = random_rows(11, 6, 3, true);
        let block = crate::block::FeatureBlock::from_rows(&data).unwrap();
        let probe = &data[4];
        for k in all_kernels() {
            let mut out = vec![0.0; data.len()];
            k.eval_block(&block, probe, &mut out);
            for (j, o) in out.iter().enumerate() {
                assert_eq!(o.to_bits(), k.eval(probe, &data[j]).to_bits(), "{k:?} row {j}");
            }
        }
    }

    #[test]
    fn gram_matrix_symmetric_unit_diagonal() {
        let data = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let k = Kernel::Rbf { gamma: 0.3 };
        let g = k.gram(&data);
        for i in 0..3 {
            assert!((g[i * 3 + i] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert_eq!(g[i * 3 + j], g[j * 3 + i]);
            }
        }
    }
}
