//! Mercer kernels (paper Eq. 5–6).

use crate::SvmError;
use tsvr_linalg::vecops;

/// A kernel function `K(u, v) = θ(u) · θ(v)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Linear kernel `u · v`.
    Linear,
    /// Gaussian RBF `exp(−γ ||u−v||²)`.
    ///
    /// The paper's Eq. 6 prints `exp(||u−v||/2σ)`; the standard Gaussian
    /// with `γ = 1/(2σ²)` is the intended kernel (see crate docs).
    Rbf {
        /// Width parameter γ.
        gamma: f64,
    },
    /// Laplacian `exp(−||u−v|| / σ)` — the alternative literal reading
    /// of Eq. 6 with the sign fixed.
    Laplacian {
        /// Width parameter σ.
        sigma: f64,
    },
    /// Polynomial `(γ u·v + c₀)^d`.
    Polynomial {
        /// Scale γ.
        gamma: f64,
        /// Offset c₀.
        coef0: f64,
        /// Degree d.
        degree: u32,
    },
    /// Sigmoid `tanh(γ u·v + c₀)` (not Mercer for all parameters; kept
    /// for completeness).
    Sigmoid {
        /// Scale γ.
        gamma: f64,
        /// Offset c₀.
        coef0: f64,
    },
}

impl Kernel {
    /// Gaussian RBF parameterized by the paper's σ: `γ = 1/(2σ²)`.
    pub fn rbf_sigma(sigma: f64) -> Result<Kernel, SvmError> {
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(SvmError::InvalidKernelParam(format!("sigma = {sigma}")));
        }
        Ok(Kernel::Rbf {
            gamma: 1.0 / (2.0 * sigma * sigma),
        })
    }

    /// Validates kernel parameters.
    pub fn validate(&self) -> Result<(), SvmError> {
        let bad = |msg: String| Err(SvmError::InvalidKernelParam(msg));
        match *self {
            Kernel::Linear => Ok(()),
            Kernel::Rbf { gamma } => {
                if gamma > 0.0 && gamma.is_finite() {
                    Ok(())
                } else {
                    bad(format!("gamma = {gamma}"))
                }
            }
            Kernel::Laplacian { sigma } => {
                if sigma > 0.0 && sigma.is_finite() {
                    Ok(())
                } else {
                    bad(format!("sigma = {sigma}"))
                }
            }
            Kernel::Polynomial { gamma, degree, .. } => {
                if gamma > 0.0 && degree >= 1 {
                    Ok(())
                } else {
                    bad(format!("gamma = {gamma}, degree = {degree}"))
                }
            }
            Kernel::Sigmoid { gamma, .. } => {
                if gamma > 0.0 {
                    Ok(())
                } else {
                    bad(format!("gamma = {gamma}"))
                }
            }
        }
    }

    /// Evaluates `K(u, v)`.
    #[inline]
    pub fn eval(&self, u: &[f64], v: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => vecops::dot(u, v),
            Kernel::Rbf { gamma } => (-gamma * vecops::sq_dist(u, v)).exp(),
            Kernel::Laplacian { sigma } => (-vecops::dist(u, v) / sigma).exp(),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (gamma * vecops::dot(u, v) + coef0).powi(degree as i32),
            Kernel::Sigmoid { gamma, coef0 } => (gamma * vecops::dot(u, v) + coef0).tanh(),
        }
    }

    /// Precomputes the full Gram matrix of a dataset (row-major,
    /// `n x n`). Upper-triangle rows are evaluated in parallel on the
    /// [`tsvr_par`] runtime (row `i` is an independent task, so the
    /// ragged row lengths load-balance across workers) and mirrored
    /// sequentially; every entry is the same `eval(i, j)` the sequential
    /// double loop computes, so the matrix is bit-identical regardless
    /// of the thread count.
    pub fn gram(&self, data: &[Vec<f64>]) -> Vec<f64> {
        let n = data.len();
        tsvr_obs::counter!("svm.kernel.evals").add((n * (n + 1) / 2) as u64);
        // Row i holds K(i, j) for j in i..n.
        let rows: Vec<Vec<f64>> = tsvr_par::par_map_index(n, |i| {
            (i..n).map(|j| self.eval(&data[i], &data[j])).collect()
        });
        let mut g = vec![0.0; n * n];
        for (i, row) in rows.iter().enumerate() {
            for (off, &k) in row.iter().enumerate() {
                let j = i + off;
                g[i * n + j] = k;
                g[j * n + i] = k;
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const U: [f64; 3] = [1.0, 2.0, 3.0];
    const V: [f64; 3] = [0.0, 2.0, 4.0];

    #[test]
    fn linear_is_dot() {
        assert_eq!(Kernel::Linear.eval(&U, &V), 16.0);
    }

    #[test]
    fn rbf_properties() {
        let k = Kernel::Rbf { gamma: 0.5 };
        // K(x,x) = 1.
        assert!((k.eval(&U, &U) - 1.0).abs() < 1e-12);
        // Symmetric, in (0,1], decreasing with distance.
        assert_eq!(k.eval(&U, &V), k.eval(&V, &U));
        let near = k.eval(&U, &[1.1, 2.0, 3.0]);
        let far = k.eval(&U, &[5.0, 2.0, 3.0]);
        assert!(near > far);
        assert!(far > 0.0 && near <= 1.0);
    }

    #[test]
    fn rbf_sigma_conversion() {
        let k = Kernel::rbf_sigma(2.0).unwrap();
        let Kernel::Rbf { gamma } = k else { panic!() };
        assert!((gamma - 1.0 / 8.0).abs() < 1e-12);
        assert!(Kernel::rbf_sigma(0.0).is_err());
        assert!(Kernel::rbf_sigma(-1.0).is_err());
        assert!(Kernel::rbf_sigma(f64::NAN).is_err());
    }

    #[test]
    fn laplacian_properties() {
        let k = Kernel::Laplacian { sigma: 1.0 };
        assert!((k.eval(&U, &U) - 1.0).abs() < 1e-12);
        let d = tsvr_linalg::vecops::dist(&U, &V);
        assert!((k.eval(&U, &V) - (-d).exp()).abs() < 1e-12);
    }

    #[test]
    fn polynomial_known_value() {
        let k = Kernel::Polynomial {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        assert_eq!(k.eval(&U, &V), 289.0); // (16+1)^2
    }

    #[test]
    fn sigmoid_bounded() {
        let k = Kernel::Sigmoid {
            gamma: 0.1,
            coef0: 0.0,
        };
        let v = k.eval(&U, &V);
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn validate_rejects_bad_params() {
        assert!(Kernel::Rbf { gamma: -1.0 }.validate().is_err());
        assert!(Kernel::Rbf {
            gamma: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(Kernel::Laplacian { sigma: 0.0 }.validate().is_err());
        assert!(Kernel::Polynomial {
            gamma: 1.0,
            coef0: 0.0,
            degree: 0
        }
        .validate()
        .is_err());
        assert!(Kernel::Linear.validate().is_ok());
        assert!(Kernel::Rbf { gamma: 0.5 }.validate().is_ok());
    }

    #[test]
    fn gram_matrix_symmetric_unit_diagonal() {
        let data = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let k = Kernel::Rbf { gamma: 0.3 };
        let g = k.gram(&data);
        for i in 0..3 {
            assert!((g[i * 3 + i] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert_eq!(g[i * 3 + j], g[j * 3 + i]);
            }
        }
    }
}
