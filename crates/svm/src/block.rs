//! Flat, row-major feature storage for the kernel hot paths.
//!
//! The pipeline hands feature rows around as `Vec<Vec<f64>>` — one heap
//! allocation per row, scattered across the heap in insertion order.
//! Pairwise-distance loops (Gram construction, batch decision values)
//! touch every row once per anchor, so the scattered layout turns an
//! arithmetic-bound loop into a pointer-chasing one. [`FeatureBlock`]
//! packs the same rows into one contiguous buffer so those loops stream
//! cache lines linearly; the per-element arithmetic is untouched, which
//! keeps every kernel value bit-identical to the nested-`Vec` path.

use crate::SvmError;

/// A dense `n × dim` matrix of feature rows in one contiguous,
/// row-major allocation.
#[derive(Debug, Clone, Default)]
pub struct FeatureBlock {
    data: Vec<f64>,
    dim: usize,
    n: usize,
}

impl FeatureBlock {
    /// Packs `rows` into a block. Every row must share one
    /// dimensionality; a ragged input is a [`SvmError::DimensionMismatch`].
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<FeatureBlock, SvmError> {
        let n = rows.len();
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(n * dim);
        for r in rows {
            if r.len() != dim {
                return Err(SvmError::DimensionMismatch {
                    expected: dim,
                    got: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(FeatureBlock { data, dim, n })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th feature row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_rows_contiguously() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let b = FeatureBlock::from_rows(&rows).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.dim(), 2);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(b.row(i), r.as_slice());
        }
    }

    #[test]
    fn empty_input_is_an_empty_block() {
        let b = FeatureBlock::from_rows(&[]).unwrap();
        assert!(b.is_empty());
        assert_eq!(b.dim(), 0);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            FeatureBlock::from_rows(&rows),
            Err(SvmError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn nan_payloads_survive_packing() {
        let rows = vec![vec![f64::NAN, 1.0], vec![2.0, f64::NEG_INFINITY]];
        let b = FeatureBlock::from_rows(&rows).unwrap();
        assert_eq!(b.row(0)[0].to_bits(), f64::NAN.to_bits());
        assert_eq!(b.row(1)[1], f64::NEG_INFINITY);
    }
}
