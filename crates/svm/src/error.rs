//! Error type for SVM training and prediction.

use std::fmt;

/// Errors produced by SVM routines.
#[derive(Debug, Clone, PartialEq)]
pub enum SvmError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Training vectors have inconsistent dimensionality.
    DimensionMismatch {
        /// Dimensionality of the first vector.
        expected: usize,
        /// Dimensionality of the offending vector.
        got: usize,
    },
    /// The ν parameter is outside `(0, 1)`.
    InvalidNu(f64),
    /// A kernel parameter is invalid (e.g. non-positive σ).
    InvalidKernelParam(String),
    /// The optimizer exhausted its iteration budget before reaching the
    /// requested tolerance.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Remaining KKT violation.
        violation: f64,
    },
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::EmptyTrainingSet => write!(f, "empty training set"),
            SvmError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            SvmError::InvalidNu(nu) => write!(f, "nu must be in (0,1), got {nu}"),
            SvmError::InvalidKernelParam(msg) => write!(f, "invalid kernel parameter: {msg}"),
            SvmError::NoConvergence {
                iterations,
                violation,
            } => write!(
                f,
                "SMO did not converge after {iterations} iterations (violation {violation:.2e})"
            ),
        }
    }
}

impl std::error::Error for SvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SvmError::EmptyTrainingSet.to_string().contains("empty"));
        assert!(SvmError::InvalidNu(1.5).to_string().contains("1.5"));
        assert!(SvmError::DimensionMismatch {
            expected: 9,
            got: 3
        }
        .to_string()
        .contains('9'));
        let e = SvmError::NoConvergence {
            iterations: 1000,
            violation: 0.5,
        };
        assert!(e.to_string().contains("1000"));
    }
}
