//! Binary soft-margin C-SVM (C-SVC) trained by SMO.
//!
//! Needed by the MI-SVM baseline (Andrews et al. \[16\] in the paper's
//! review): MI-SVM alternates between imputing instance labels and
//! training an ordinary two-class SVM. Solver structure mirrors
//! [`crate::oneclass`]: dense Gram cache and maximal-violating-pair
//! selection on the dual
//!
//! ```text
//! min_α  ½ Σ_ij α_i α_j y_i y_j K(x_i,x_j) − Σ_i α_i
//! s.t.   0 ≤ α_i ≤ C,   Σ_i α_i y_i = 0
//! ```

use crate::{Kernel, SvmError};

/// Trainer configuration for the binary SVM.
#[derive(Debug, Clone, Copy)]
pub struct Svc {
    /// Kernel.
    pub kernel: Kernel,
    /// Soft-margin penalty.
    pub c: f64,
    /// KKT violation tolerance.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Svc {
    /// Creates a trainer with default optimizer settings.
    pub fn new(kernel: Kernel, c: f64) -> Svc {
        Svc {
            kernel,
            c,
            tolerance: 1e-6,
            max_iterations: 100_000,
        }
    }

    /// Trains on labeled examples (`labels[i]` = class of `data[i]`).
    ///
    /// Requires at least one example of each class.
    pub fn fit(&self, data: &[Vec<f64>], labels: &[bool]) -> Result<SvcModel, SvmError> {
        if data.is_empty() {
            return Err(SvmError::EmptyTrainingSet);
        }
        if data.len() != labels.len() {
            return Err(SvmError::DimensionMismatch {
                expected: data.len(),
                got: labels.len(),
            });
        }
        self.kernel.validate()?;
        if self.c <= 0.0 {
            return Err(SvmError::InvalidKernelParam(format!("C = {}", self.c)));
        }
        let dim = data[0].len();
        for v in data {
            if v.len() != dim {
                return Err(SvmError::DimensionMismatch {
                    expected: dim,
                    got: v.len(),
                });
            }
        }
        if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
            return Err(SvmError::InvalidKernelParam(
                "SVC needs both classes in the training set".into(),
            ));
        }

        let n = data.len();
        let y: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();
        let gram = self.kernel.gram(data);
        let q = |i: usize, j: usize| y[i] * y[j] * gram[i * n + j];

        let mut alpha = vec![0.0f64; n];
        // Gradient of the dual objective: G_i = Σ_j α_j Q_ij − 1.
        let mut grad = vec![-1.0f64; n];

        let mut converged = false;
        let mut iterations = 0usize;
        let mut last_violation = f64::INFINITY;
        while iterations < self.max_iterations {
            iterations += 1;
            // Maximal violating pair (libsvm working set selection,
            // first order): i maximizes -y_i G_i over the "up" set,
            // j minimizes -y_j G_j over the "down" set.
            let mut i_best: Option<(usize, f64)> = None;
            let mut j_best: Option<(usize, f64)> = None;
            for k in 0..n {
                let up =
                    (y[k] > 0.0 && alpha[k] < self.c - 1e-15) || (y[k] < 0.0 && alpha[k] > 1e-15);
                let down =
                    (y[k] > 0.0 && alpha[k] > 1e-15) || (y[k] < 0.0 && alpha[k] < self.c - 1e-15);
                let v = -y[k] * grad[k];
                if up && i_best.map(|(_, bv)| v > bv).unwrap_or(true) {
                    i_best = Some((k, v));
                }
                if down && j_best.map(|(_, bv)| v < bv).unwrap_or(true) {
                    j_best = Some((k, v));
                }
            }
            let (Some((i, vi)), Some((j, vj))) = (i_best, j_best) else {
                converged = true;
                break;
            };
            last_violation = vi - vj;
            if last_violation < self.tolerance {
                converged = true;
                break;
            }

            // Analytic 2-variable subproblem (libsvm's update).
            let denom =
                (q(i, i) + q(j, j) - 2.0 * y[i] * y[j] * q(i, j) / (y[i] * y[j])).max(1e-12);
            // Note: q already folds in the labels; the plain form is
            // K_ii + K_jj - 2 K_ij.
            let kij = gram[i * n + j];
            let eta = (gram[i * n + i] + gram[j * n + j] - 2.0 * kij).max(1e-12);
            let _ = denom;
            let delta = (vi - vj) / eta;

            // Step along the feasible direction preserving Σ α y = 0.
            let (mut di, mut dj) = (y[i] * delta, -y[j] * delta);
            // Clip to the box.
            let clip = |a: f64, d: f64| -> f64 {
                if d > 0.0 {
                    d.min(self.c - a)
                } else {
                    d.max(-a)
                }
            };
            let ci = clip(alpha[i], di);
            let scale_i = if di.abs() > 1e-18 { ci / di } else { 0.0 };
            let cj = clip(alpha[j], dj);
            let scale_j = if dj.abs() > 1e-18 { cj / dj } else { 0.0 };
            let scale = scale_i.min(scale_j).max(0.0);
            di *= scale;
            dj *= scale;
            if di.abs() < 1e-18 && dj.abs() < 1e-18 {
                converged = true;
                break;
            }
            alpha[i] += di;
            alpha[j] += dj;
            for k in 0..n {
                grad[k] += di * y[i] * y[k] * gram[i * n + k] + dj * y[j] * y[k] * gram[j * n + k];
            }
        }
        if !converged {
            return Err(SvmError::NoConvergence {
                iterations,
                violation: last_violation,
            });
        }

        // Bias from free support vectors (y_i (Σ α_j y_j K_ij + b) = 1).
        let mut b_sum = 0.0;
        let mut b_n = 0usize;
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        for k in 0..n {
            let wx: f64 = (0..n)
                .filter(|&j| alpha[j] > 1e-12)
                .map(|j| alpha[j] * y[j] * gram[j * n + k])
                .sum();
            let margin = y[k] - wx;
            if alpha[k] > 1e-12 && alpha[k] < self.c - 1e-12 {
                b_sum += margin;
                b_n += 1;
            } else if alpha[k] <= 1e-12 {
                if y[k] > 0.0 {
                    hi = hi.min(margin);
                } else {
                    lo = lo.max(margin);
                }
            }
        }
        let bias = if b_n > 0 {
            b_sum / b_n as f64
        } else if lo.is_finite() && hi.is_finite() {
            (lo + hi) / 2.0
        } else if lo.is_finite() {
            lo
        } else if hi.is_finite() {
            hi
        } else {
            0.0
        };

        let mut support = Vec::new();
        let mut coeffs = Vec::new();
        for k in 0..n {
            if alpha[k] > 1e-12 {
                support.push(data[k].clone());
                coeffs.push(alpha[k] * y[k]);
            }
        }
        let support_block = crate::block::FeatureBlock::from_rows(&support)
            .expect("support vectors come from a dimension-validated training set");
        Ok(SvcModel {
            kernel: self.kernel,
            support,
            coeffs,
            bias,
            iterations,
            support_block,
        })
    }
}

/// A trained binary SVM.
#[derive(Debug, Clone)]
pub struct SvcModel {
    /// Kernel used in training.
    pub kernel: Kernel,
    /// Support vectors.
    pub support: Vec<Vec<f64>>,
    /// Signed dual coefficients `α_i y_i`.
    pub coeffs: Vec<f64>,
    /// Bias term.
    pub bias: f64,
    /// SMO iterations used.
    pub iterations: usize,
    /// Support vectors packed contiguously for the decision loop (same
    /// rows, same order as `support`).
    support_block: crate::block::FeatureBlock,
}

impl SvcModel {
    /// Raw decision value; positive = the `true` class. Evaluated as a
    /// fused kernel row over the contiguous support block followed by
    /// the coefficient fold in support order — bit-identical to the
    /// scalar `bias + Σ a·eval(sv, x)` loop.
    pub fn decision(&self, x: &[f64]) -> f64 {
        let mut row = vec![0.0; self.support_block.len()];
        self.kernel.eval_block(&self.support_block, x, &mut row);
        let mut s = self.bias;
        for (&a, &k) in self.coeffs.iter().zip(&row) {
            s += a * k;
        }
        s
    }

    /// Predicted class.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) >= 0.0
    }

    /// Number of support vectors.
    pub fn support_count(&self) -> usize {
        self.support.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(center: &[f64], n: usize, spread: f64, salt: u64) -> Vec<Vec<f64>> {
        let mut state = salt.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n)
            .map(|_| center.iter().map(|&c| c + spread * next()).collect())
            .collect()
    }

    fn two_cluster_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut data = cluster(&[0.0, 0.0], 30, 1.0, 1);
        let neg = cluster(&[4.0, 4.0], 30, 1.0, 2);
        let mut labels = vec![true; 30];
        data.extend(neg);
        labels.extend(vec![false; 30]);
        (data, labels)
    }

    #[test]
    fn separates_two_clusters() {
        let (data, labels) = two_cluster_data();
        let m = Svc::new(Kernel::Rbf { gamma: 0.5 }, 10.0)
            .fit(&data, &labels)
            .unwrap();
        let correct = data
            .iter()
            .zip(&labels)
            .filter(|(x, &l)| m.predict(x) == l)
            .count();
        assert!(correct >= 58, "training accuracy {correct}/60");
        assert!(m.predict(&[0.2, -0.1]));
        assert!(!m.predict(&[4.2, 3.8]));
    }

    #[test]
    fn linear_kernel_on_linearly_separable() {
        let data = vec![
            vec![0.0, 0.0],
            vec![0.5, 0.2],
            vec![0.1, 0.6],
            vec![3.0, 3.0],
            vec![3.5, 2.8],
            vec![2.8, 3.4],
        ];
        let labels = vec![true, true, true, false, false, false];
        let m = Svc::new(Kernel::Linear, 10.0).fit(&data, &labels).unwrap();
        for (x, &l) in data.iter().zip(&labels) {
            assert_eq!(m.predict(x), l, "misclassified {x:?}");
        }
        // Margin structure: decision magnitude grows away from the
        // boundary.
        assert!(m.decision(&[-1.0, -1.0]) > m.decision(&[1.4, 1.4]));
    }

    #[test]
    fn soft_margin_tolerates_label_noise() {
        let (mut data, mut labels) = two_cluster_data();
        // Flip two labels.
        labels[0] = false;
        labels[35] = true;
        data.push(vec![0.1, 0.1]);
        labels.push(true);
        let m = Svc::new(Kernel::Rbf { gamma: 0.5 }, 1.0)
            .fit(&data, &labels)
            .unwrap();
        // Clean probes still classified correctly despite noise.
        assert!(m.predict(&[0.0, 0.2]));
        assert!(!m.predict(&[4.0, 4.1]));
    }

    #[test]
    fn dual_feasibility_holds() {
        let (data, labels) = two_cluster_data();
        let c = 5.0;
        let m = Svc::new(Kernel::Rbf { gamma: 0.5 }, c)
            .fit(&data, &labels)
            .unwrap();
        // Σ α_i y_i = 0 and 0 < |coeff| <= C.
        let sum: f64 = m.coeffs.iter().sum();
        assert!(sum.abs() < 1e-6, "Σ α y = {sum}");
        for &a in &m.coeffs {
            assert!(a.abs() > 0.0 && a.abs() <= c + 1e-9);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let svc = Svc::new(Kernel::Linear, 1.0);
        assert!(matches!(
            svc.fit(&[], &[]).unwrap_err(),
            SvmError::EmptyTrainingSet
        ));
        assert!(svc.fit(&[vec![1.0], vec![2.0]], &[true]).is_err());
        // Single-class training set.
        assert!(svc.fit(&[vec![1.0], vec![2.0]], &[true, true]).is_err());
        assert!(Svc::new(Kernel::Linear, 0.0)
            .fit(&[vec![1.0], vec![2.0]], &[true, false])
            .is_err());
    }

    #[test]
    fn free_svs_sit_on_the_margin() {
        let (data, labels) = two_cluster_data();
        let c = 10.0;
        let m = Svc::new(Kernel::Rbf { gamma: 0.5 }, c)
            .fit(&data, &labels)
            .unwrap();
        for (sv, &a) in m.support.iter().zip(&m.coeffs) {
            if a.abs() < c - 1e-6 {
                // Free SV: |decision| ≈ 1.
                let d = m.decision(sv).abs();
                assert!((d - 1.0).abs() < 1e-3, "free SV margin {d}");
            }
        }
    }

    #[test]
    fn tiny_training_set() {
        let m = Svc::new(Kernel::Linear, 1.0)
            .fit(&[vec![0.0], vec![1.0]], &[false, true])
            .unwrap();
        assert!(m.predict(&[2.0]));
        assert!(!m.predict(&[-1.0]));
    }
}
