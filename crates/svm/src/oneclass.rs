//! One-class ν-SVM (Schölkopf et al. \[18\]) trained by SMO.
//!
//! Primal (paper Eq. 7–8): separate the training data from the origin in
//! feature space with maximum margin, allowing a `ν` fraction of
//! outliers. Dual:
//!
//! ```text
//! min_α  ½ Σ_ij α_i α_j K(x_i, x_j)
//! s.t.   0 ≤ α_i ≤ 1/(νn),   Σ_i α_i = 1
//! ```
//!
//! The decision function is `f(x) = sign(Σ_i α_i K(x_i, x) − ρ)` and is
//! positive for "most examples contained in the training set" (paper
//! §5.2). The optimizer is Sequential Minimal Optimization with
//! maximal-violating-pair working-set selection and a dense kernel
//! cache — training sets in the retrieval loop are tens of vectors, so
//! the dense Gram matrix is the fastest cache.

// Indexed loops mirror the textbook formulations of these numeric
// kernels; iterator rewrites obscure the subscript structure.
#![allow(clippy::needless_range_loop)]

use crate::{Kernel, SvmError};

/// Trainer configuration for the one-class SVM.
#[derive(Debug, Clone, Copy)]
pub struct OneClassSvm {
    /// Kernel to use.
    pub kernel: Kernel,
    /// The ν parameter in `(0, 1)`: an upper bound on the fraction of
    /// outliers and a lower bound on the fraction of support vectors.
    /// This is the paper's `δ` from Eq. 9.
    pub nu: f64,
    /// KKT violation tolerance.
    pub tolerance: f64,
    /// Iteration budget for SMO.
    pub max_iterations: usize,
}

impl OneClassSvm {
    /// Creates a trainer with the given kernel and ν, using default
    /// optimizer settings.
    ///
    /// ```
    /// use tsvr_svm::{Kernel, OneClassSvm};
    ///
    /// // Learn the support of a cluster around the origin.
    /// let data: Vec<Vec<f64>> = (0..40)
    ///     .map(|i| vec![(i % 7) as f64 * 0.1, (i % 5) as f64 * 0.1])
    ///     .collect();
    /// let model = OneClassSvm::new(Kernel::Rbf { gamma: 1.0 }, 0.1)
    ///     .fit(&data)
    ///     .unwrap();
    /// assert!(model.is_inlier(&[0.3, 0.2]));
    /// assert!(!model.is_inlier(&[5.0, 5.0]));
    /// ```
    pub fn new(kernel: Kernel, nu: f64) -> OneClassSvm {
        OneClassSvm {
            kernel,
            nu,
            tolerance: 1e-6,
            max_iterations: 100_000,
        }
    }

    /// Validates the trainer parameters and the training set's shape.
    fn validate(&self, data: &[Vec<f64>]) -> Result<(), SvmError> {
        if data.is_empty() {
            return Err(SvmError::EmptyTrainingSet);
        }
        if !(0.0..1.0).contains(&self.nu) || self.nu == 0.0 {
            return Err(SvmError::InvalidNu(self.nu));
        }
        self.kernel.validate()?;
        let dim = data[0].len();
        for v in data {
            if v.len() != dim {
                return Err(SvmError::DimensionMismatch {
                    expected: dim,
                    got: v.len(),
                });
            }
        }
        Ok(())
    }

    /// Trains on a set of (implicitly positive/"relevant") examples.
    pub fn fit(&self, data: &[Vec<f64>]) -> Result<OneClassModel, SvmError> {
        self.validate(data)?;
        let gram = self.kernel.gram(data);
        self.solve(data, &gram)
    }

    /// Trains with a caller-supplied Gram matrix — `gram` must be this
    /// trainer's kernel over `data` (row-major `n × n`), e.g. from
    /// [`Kernel::gram_extend`]'s incremental maintenance across
    /// relevance-feedback rounds. A wrong-sized matrix is a
    /// [`SvmError::DimensionMismatch`]; the values themselves are
    /// trusted, which is exactly what makes memoization across
    /// retrainings possible.
    pub fn fit_with_gram(&self, data: &[Vec<f64>], gram: &[f64]) -> Result<OneClassModel, SvmError> {
        self.validate(data)?;
        let n = data.len();
        if gram.len() != n * n {
            return Err(SvmError::DimensionMismatch {
                expected: n * n,
                got: gram.len(),
            });
        }
        self.solve(data, gram)
    }

    /// The SMO solve over a precomputed Gram matrix (shared by
    /// [`fit`](Self::fit) and [`fit_with_gram`](Self::fit_with_gram);
    /// inputs already validated).
    fn solve(&self, data: &[Vec<f64>], gram: &[f64]) -> Result<OneClassModel, SvmError> {
        let _span = tsvr_obs::tspan!("svm.train");
        let n = data.len();
        let c = 1.0 / (self.nu * n as f64); // upper bound per α
        let q = |i: usize, j: usize| gram[i * n + j];

        // Initialization (libsvm convention): fill α up to the bound
        // until the equality constraint Σα = 1 is met.
        let mut alpha = vec![0.0f64; n];
        let mut remaining = 1.0f64;
        for a in alpha.iter_mut() {
            let v = c.min(remaining);
            *a = v;
            remaining -= v;
            if remaining <= 0.0 {
                break;
            }
        }

        // Gradient of the dual objective: G = Qα.
        let mut grad = vec![0.0f64; n];
        for i in 0..n {
            let mut g = 0.0;
            for j in 0..n {
                if alpha[j] > 0.0 {
                    g += q(i, j) * alpha[j];
                }
            }
            grad[i] = g;
        }

        // SMO main loop: pick the maximal violating pair.
        // KKT for this problem: ∃ρ with  G_i ≥ ρ if α_i = 0,
        //                               G_i ≤ ρ if α_i = C,
        //                               G_i = ρ if 0 < α_i < C.
        let mut converged = false;
        let mut iterations = 0usize;
        let mut last_violation = f64::INFINITY;
        while iterations < self.max_iterations {
            iterations += 1;
            // i: index with α_i < C minimizing G (wants to grow);
            // j: index with α_j > 0 maximizing G (wants to shrink).
            let mut i_best: Option<usize> = None;
            let mut j_best: Option<usize> = None;
            for k in 0..n {
                if alpha[k] < c - 1e-15 && i_best.map(|i| grad[k] < grad[i]).unwrap_or(true) {
                    i_best = Some(k);
                }
                if alpha[k] > 1e-15 && j_best.map(|j| grad[k] > grad[j]).unwrap_or(true) {
                    j_best = Some(k);
                }
            }
            let (Some(i), Some(j)) = (i_best, j_best) else {
                converged = true;
                break;
            };
            last_violation = grad[j] - grad[i];
            if last_violation < self.tolerance {
                converged = true;
                break;
            }

            // Analytic step along e_i - e_j.
            let denom = (q(i, i) + q(j, j) - 2.0 * q(i, j)).max(1e-12);
            let mut delta = last_violation / denom;
            delta = delta.min(c - alpha[i]).min(alpha[j]);
            if delta <= 0.0 {
                converged = true;
                break;
            }
            alpha[i] += delta;
            alpha[j] -= delta;
            for k in 0..n {
                grad[k] += delta * (q(i, k) - q(j, k));
            }
        }
        if !converged {
            return Err(SvmError::NoConvergence {
                iterations,
                violation: last_violation,
            });
        }

        // ρ: average gradient over free support vectors; fall back to
        // the midpoint of the bound gradients.
        let mut free_sum = 0.0;
        let mut free_n = 0usize;
        let mut upper = f64::NEG_INFINITY; // max G over α = C
        let mut lower = f64::INFINITY; // min G over α = 0
        for k in 0..n {
            if alpha[k] > 1e-12 && alpha[k] < c - 1e-12 {
                free_sum += grad[k];
                free_n += 1;
            } else if alpha[k] >= c - 1e-12 {
                upper = upper.max(grad[k]);
            } else {
                lower = lower.min(grad[k]);
            }
        }
        // Without free SVs, ρ is only constrained to the interval
        // [max_{α=C} G, min_{α=0} G]; take its lower end — the smallest
        // KKT-consistent ρ — so boundary-bound support vectors sit *on*
        // the sphere rather than strictly outside (this is what keeps
        // the ν-property's outlier bound tight on small training sets).
        let rho = if free_n > 0 {
            free_sum / free_n as f64
        } else if upper.is_finite() {
            upper
        } else if lower.is_finite() {
            lower
        } else {
            0.0
        };

        // Keep only support vectors.
        let mut support = Vec::new();
        let mut coeffs = Vec::new();
        for k in 0..n {
            if alpha[k] > 1e-12 {
                support.push(data[k].clone());
                coeffs.push(alpha[k]);
            }
        }
        tsvr_obs::histogram!("svm.train.iterations").record(iterations as u64);
        tsvr_obs::histogram!("svm.train.support_vectors").record(support.len() as u64);
        Ok(OneClassModel::from_parts(
            self.kernel,
            self.nu,
            support,
            coeffs,
            rho,
            iterations,
        ))
    }
}

/// A trained one-class model.
#[derive(Debug, Clone)]
pub struct OneClassModel {
    /// Kernel the model was trained with.
    pub kernel: Kernel,
    /// Training ν.
    pub nu: f64,
    /// Support vectors.
    pub support: Vec<Vec<f64>>,
    /// Dual coefficients (same order as `support`).
    pub coeffs: Vec<f64>,
    /// Offset ρ.
    pub rho: f64,
    /// SMO iterations used in training.
    pub iterations: usize,
    /// The support vectors packed into one contiguous row-major block
    /// so decision loops stream them cache-linearly (same rows, same
    /// order as `support`).
    support_block: crate::block::FeatureBlock,
}

impl OneClassModel {
    /// Assembles a model, packing the support vectors into the
    /// contiguous block the decision path reads.
    pub(crate) fn from_parts(
        kernel: Kernel,
        nu: f64,
        support: Vec<Vec<f64>>,
        coeffs: Vec<f64>,
        rho: f64,
        iterations: usize,
    ) -> OneClassModel {
        let support_block = crate::block::FeatureBlock::from_rows(&support)
            .expect("support vectors come from a dimension-validated training set");
        OneClassModel {
            kernel,
            nu,
            support,
            coeffs,
            rho,
            iterations,
            support_block,
        }
    }

    /// The raw decision value `Σ_i α_i K(x_i, x) − ρ`; positive inside
    /// the learned region.
    pub fn decision(&self, x: &[f64]) -> f64 {
        tsvr_obs::counter!("svm.kernel.evals").add(self.support.len() as u64);
        self.decision_raw(x)
    }

    /// Batch [`decision`](Self::decision) over many vectors, fanned out
    /// on the [`tsvr_par`] runtime with a per-vector cost hint (one
    /// kernel row per probe) so small batches run inline instead of
    /// paying the fork cost. Each vector's value is computed by the
    /// same per-vector kernel loop, and results come back in input
    /// order, so the output is bit-identical to the sequential map —
    /// this is the scoring path the retrieval session uses to re-rank
    /// the whole database after each feedback round.
    pub fn decision_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        // Probes per parallel task: one kernel-row scratch buffer is
        // shared across a whole chunk, so the allocator is off the
        // per-probe path (it cost ~10% at small support counts).
        const PROBE_CHUNK: usize = 64;
        tsvr_obs::counter!("svm.kernel.evals")
            .add((self.support.len() * xs.len()) as u64);
        let per_probe = (self.support.len() as u64)
            .saturating_mul(self.kernel.est_eval_ns(self.support_block.dim()))
            + 20; // fold overhead
        let chunks: Vec<&[Vec<f64>]> = xs.chunks(PROBE_CHUNK).collect();
        let est = per_probe.saturating_mul(PROBE_CHUNK as u64);
        let parts = tsvr_par::par_map_est(&chunks, est, |_, chunk| {
            let mut row = vec![0.0; self.support_block.len()];
            let mut out = Vec::with_capacity(chunk.len());
            for x in chunk.iter() {
                self.kernel.eval_block(&self.support_block, x, &mut row);
                let mut s = 0.0;
                for (&a, &k) in self.coeffs.iter().zip(&row) {
                    s += a * k;
                }
                out.push(s - self.rho);
            }
            out
        });
        parts.into_iter().flatten().collect()
    }

    /// The kernel expansion without the obs probe (shared by
    /// [`decision`](Self::decision) and the batch path): one fused
    /// kernel row over the contiguous support block, then the dual-
    /// coefficient dot product in support order — the same adds and
    /// multiplies, in the same order, as the scalar
    /// `Σ a·eval(sv, x)` loop.
    fn decision_raw(&self, x: &[f64]) -> f64 {
        let mut row = vec![0.0; self.support_block.len()];
        self.kernel.eval_block(&self.support_block, x, &mut row);
        let mut s = 0.0;
        for (&a, &k) in self.coeffs.iter().zip(&row) {
            s += a * k;
        }
        s - self.rho
    }

    /// Whether `x` falls inside the learned ("relevant") region.
    pub fn is_inlier(&self, x: &[f64]) -> bool {
        self.decision(x) >= 0.0
    }

    /// Number of support vectors.
    pub fn support_count(&self) -> usize {
        self.support.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic cluster of points around a center.
    fn cluster(center: &[f64], n: usize, spread: f64, salt: u64) -> Vec<Vec<f64>> {
        let mut state = salt.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n)
            .map(|_| center.iter().map(|&c| c + spread * next()).collect())
            .collect()
    }

    fn default_model(data: &[Vec<f64>], nu: f64) -> OneClassModel {
        OneClassSvm::new(Kernel::Rbf { gamma: 0.5 }, nu)
            .fit(data)
            .unwrap()
    }

    #[test]
    fn accepts_training_region_rejects_far_points() {
        let data = cluster(&[0.0, 0.0], 60, 1.0, 1);
        let m = default_model(&data, 0.1);
        assert!(m.is_inlier(&[0.0, 0.0]));
        assert!(m.is_inlier(&[0.2, -0.1]));
        assert!(!m.is_inlier(&[8.0, 8.0]));
        assert!(!m.is_inlier(&[-10.0, 3.0]));
    }

    #[test]
    fn nu_bounds_outlier_and_sv_fractions() {
        // The ν-property: outlier fraction ≤ ν ≤ SV fraction.
        for &nu in &[0.05, 0.1, 0.3, 0.5] {
            let data = cluster(&[1.0, 2.0, 3.0], 100, 2.0, 7);
            let m = default_model(&data, nu);
            let outliers = data.iter().filter(|x| !m.is_inlier(x)).count();
            let n = data.len() as f64;
            assert!(
                outliers as f64 / n <= nu + 0.03,
                "nu {nu}: outlier fraction {}",
                outliers as f64 / n
            );
            assert!(
                m.support_count() as f64 / n >= nu - 0.03,
                "nu {nu}: SV fraction {}",
                m.support_count() as f64 / n
            );
        }
    }

    #[test]
    fn kkt_conditions_hold() {
        let data = cluster(&[0.0, 0.0], 50, 1.5, 3);
        let nu = 0.2;
        let m = default_model(&data, nu);
        // Recompute G_i = Σ_j α_j K(x_i, x_j) = decision(x_i) + ρ for SVs
        // and check the sign structure against ρ.
        let c = 1.0 / (nu * data.len() as f64);
        // Sum of alphas = 1.
        let total: f64 = m.coeffs.iter().sum();
        assert!((total - 1.0).abs() < 1e-8, "Σα = {total}");
        for (sv, &a) in m.support.iter().zip(&m.coeffs) {
            assert!(a > 0.0 && a <= c + 1e-9, "alpha {a} out of [0, {c}]");
            let g = m.decision(sv) + m.rho;
            if a < c - 1e-9 {
                // Free SV: G ≈ ρ.
                assert!(
                    (g - m.rho).abs() < 1e-4,
                    "free SV violates KKT: {g} vs {}",
                    m.rho
                );
            } else {
                // Bounded SV: G ≤ ρ (margin violator).
                assert!(g <= m.rho + 1e-4);
            }
        }
    }

    #[test]
    fn tighter_nu_shrinks_the_region() {
        let data = cluster(&[0.0, 0.0], 80, 2.0, 11);
        let loose = default_model(&data, 0.05);
        let tight = default_model(&data, 0.5);
        let probe: Vec<Vec<f64>> = (0..20).map(|i| vec![3.0 + i as f64 * 0.1, 0.0]).collect();
        let loose_in = probe.iter().filter(|p| loose.is_inlier(p)).count();
        let tight_in = probe.iter().filter(|p| tight.is_inlier(p)).count();
        assert!(
            tight_in <= loose_in,
            "tight ν admitted more boundary points ({tight_in} vs {loose_in})"
        );
    }

    #[test]
    fn single_sample_model() {
        let m = default_model(&[vec![1.0, 1.0]], 0.5);
        assert!(m.is_inlier(&[1.0, 1.0]));
        assert!(!m.is_inlier(&[6.0, 6.0]));
        assert_eq!(m.support_count(), 1);
    }

    #[test]
    fn errors_on_bad_input() {
        let svm = OneClassSvm::new(Kernel::Rbf { gamma: 0.5 }, 0.2);
        assert_eq!(svm.fit(&[]).unwrap_err(), SvmError::EmptyTrainingSet);
        let bad_dim = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            svm.fit(&bad_dim).unwrap_err(),
            SvmError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            OneClassSvm::new(Kernel::Rbf { gamma: 0.5 }, 0.0)
                .fit(&[vec![1.0]])
                .unwrap_err(),
            SvmError::InvalidNu(_)
        ));
        assert!(matches!(
            OneClassSvm::new(Kernel::Rbf { gamma: 0.5 }, 1.0)
                .fit(&[vec![1.0]])
                .unwrap_err(),
            SvmError::InvalidNu(_)
        ));
        assert!(matches!(
            OneClassSvm::new(Kernel::Rbf { gamma: -0.5 }, 0.3)
                .fit(&[vec![1.0]])
                .unwrap_err(),
            SvmError::InvalidKernelParam(_)
        ));
    }

    #[test]
    fn separates_two_clusters_trained_on_one() {
        let relevant = cluster(&[0.0, 0.0, 0.0], 50, 1.0, 5);
        let irrelevant = cluster(&[6.0, 6.0, 6.0], 50, 1.0, 6);
        let m = OneClassSvm::new(Kernel::Rbf { gamma: 0.3 }, 0.1)
            .fit(&relevant)
            .unwrap();
        let fp = irrelevant.iter().filter(|x| m.is_inlier(x)).count();
        let tp = relevant.iter().filter(|x| m.is_inlier(x)).count();
        assert!(tp >= 45, "tp {tp}");
        assert_eq!(fp, 0, "fp {fp}");
    }

    #[test]
    fn linear_kernel_works_too() {
        // With a linear kernel the region is a half-space; points in the
        // training direction stay inliers.
        let data: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![1.0 + (i % 5) as f64 * 0.1, 1.0])
            .collect();
        let m = OneClassSvm::new(Kernel::Linear, 0.2).fit(&data).unwrap();
        assert!(m.is_inlier(&[1.2, 1.0]));
        assert!(!m.is_inlier(&[-1.0, -1.0]));
    }

    #[test]
    fn decision_is_continuous_across_boundary() {
        let data = cluster(&[0.0, 0.0], 40, 1.0, 9);
        let m = default_model(&data, 0.1);
        // Walk outward from the center: decision decreases monotonically
        // modulo small kernel ripples.
        let d0 = m.decision(&[0.0, 0.0]);
        let d5 = m.decision(&[5.0, 0.0]);
        let d9 = m.decision(&[9.0, 0.0]);
        assert!(d0 > d5 && d5 > d9);
    }

    #[test]
    fn duplicated_points_do_not_break_training() {
        let data = vec![vec![1.0, 1.0]; 30];
        let m = default_model(&data, 0.3);
        assert!(m.is_inlier(&[1.0, 1.0]));
        assert!(!m.is_inlier(&[4.0, 4.0]));
    }

    #[test]
    fn decision_batch_is_bit_identical_to_single_calls() {
        let data = cluster(&[0.0, 0.0], 50, 1.5, 13);
        let m = default_model(&data, 0.2);
        let probes = cluster(&[1.0, -1.0], 200, 4.0, 17);
        let single: Vec<f64> = probes.iter().map(|x| m.decision(x)).collect();
        for threads in [1, 4] {
            tsvr_par::set_threads(threads);
            let batch = m.decision_batch(&probes);
            tsvr_par::set_threads(0);
            assert_eq!(batch.len(), single.len());
            for (a, b) in single.iter().zip(&batch) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }
}
