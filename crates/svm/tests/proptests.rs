//! Property-based tests for the SVM solvers, driven by the in-tree
//! seeded harness (`tsvr_sim::check`).

use tsvr_sim::check;
use tsvr_sim::Pcg32;
use tsvr_svm::{Kernel, OneClassSvm, Svc};

/// A cluster of 3-D points with coordinates uniform in `[lo, hi)`.
fn points(rng: &mut Pcg32, lo_n: usize, hi_n: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    let n = check::len_in(rng, lo_n, hi_n);
    (0..n).map(|_| check::vec_f64(rng, 3, lo, hi)).collect()
}

#[test]
fn oneclass_nu_property() {
    check::cases(40, |case, rng| {
        let data = points(rng, 10, 60, -1.0, 1.0);
        let nu = rng.uniform(0.05, 0.6);
        let model = OneClassSvm::new(Kernel::Rbf { gamma: 1.0 }, nu)
            .fit(&data)
            .unwrap();
        let n = data.len() as f64;
        // Count strict outliers with a tolerance above the solver's
        // KKT threshold: boundary SVs land within ±tolerance of zero.
        let outliers = data.iter().filter(|x| model.decision(x) < -1e-5).count() as f64;
        // ν-property with finite-sample slack (±2 points): the exact
        // statement is asymptotic.
        assert!(
            outliers / n <= nu + 2.0 / n + 1e-9,
            "case {case}: outliers {outliers}/{n} exceed nu {nu}"
        );
        assert!(
            model.support_count() as f64 / n >= nu - 2.0 / n - 1e-9,
            "case {case}: SVs {} below nu {nu}",
            model.support_count()
        );
    });
}

#[test]
fn oneclass_alphas_sum_to_one() {
    check::cases(40, |case, rng| {
        let data = points(rng, 5, 40, -2.0, 2.0);
        let nu = rng.uniform(0.1, 0.8);
        let model = OneClassSvm::new(Kernel::Rbf { gamma: 0.7 }, nu)
            .fit(&data)
            .unwrap();
        let sum: f64 = model.coeffs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-7, "case {case}: sum alpha = {sum}");
        let c = 1.0 / (nu * data.len() as f64);
        for &a in &model.coeffs {
            assert!(a > 0.0 && a <= c + 1e-9, "case {case}: alpha {a} out of box");
        }
    });
}

#[test]
fn oneclass_decision_invariant_to_duplication() {
    check::cases(40, |case, rng| {
        let data = points(rng, 5, 20, -1.0, 1.0);
        // Training on the same data twice over yields (approximately)
        // the same decision boundary: the dual is scale-structured.
        let m1 = OneClassSvm::new(Kernel::Rbf { gamma: 1.0 }, 0.3)
            .fit(&data)
            .unwrap();
        let doubled: Vec<Vec<f64>> = data.iter().chain(data.iter()).cloned().collect();
        let m2 = OneClassSvm::new(Kernel::Rbf { gamma: 1.0 }, 0.3)
            .fit(&doubled)
            .unwrap();
        for probe in data.iter().take(5) {
            let d1 = m1.decision(probe);
            let d2 = m2.decision(probe);
            assert!((d1 - d2).abs() < 0.05, "case {case}: {d1} vs {d2}");
        }
    });
}

#[test]
fn oneclass_fit_survives_duplicate_identical_vectors() {
    check::cases(64, |case, rng| {
        // Exact duplicates make every kernel row identical, so the SMO
        // step's denominator `q_ii + q_jj − 2 q_ij` collapses to zero —
        // the clamped degenerate path must still converge to a finite
        // model instead of producing NaN steps.
        let x = check::vec_f64(rng, 3, -1.0, 1.0);
        let n = check::len_in(rng, 2, 30);
        let mut data = vec![x.clone(); n];
        if rng.chance(0.5) {
            // Sometimes a second duplicated cluster.
            let y = check::vec_f64(rng, 3, -1.0, 1.0);
            for _ in 0..check::len_in(rng, 1, 6) {
                data.push(y.clone());
            }
        }
        let nu = rng.uniform(0.05, 0.8);
        let model = OneClassSvm::new(Kernel::Rbf { gamma: 1.0 }, nu)
            .fit(&data)
            .unwrap();
        assert!(model.rho.is_finite(), "case {case}: rho {}", model.rho);
        for &a in &model.coeffs {
            assert!(a.is_finite(), "case {case}: alpha {a}");
        }
        let d = model.decision(&x);
        assert!(d.is_finite(), "case {case}: decision {d}");
        // The ν-property still holds: at most ~ν·N strict outliers
        // (finite-sample slack as in `oneclass_nu_property`).
        let n_total = data.len() as f64;
        let outliers = data.iter().filter(|p| model.decision(p) < -1e-5).count() as f64;
        assert!(
            outliers / n_total <= nu + 2.0 / n_total + 1e-9,
            "case {case}: outliers {outliers}/{n_total} exceed nu {nu}"
        );
        // Batch scoring agrees bitwise with single calls.
        for (b, p) in model.decision_batch(&data).iter().zip(&data) {
            assert_eq!(b.to_bits(), model.decision(p).to_bits(), "case {case}");
        }
    });
}

#[test]
fn svc_separates_translated_clusters() {
    check::cases(40, |case, rng| {
        let base = points(rng, 6, 20, -0.8, 0.8);
        let shift = rng.uniform(3.0, 6.0);
        // Positive cluster = base; negative = base translated by shift.
        let mut data = base.clone();
        let mut labels = vec![true; base.len()];
        for p in &base {
            data.push(p.iter().map(|x| x + shift).collect());
            labels.push(false);
        }
        let model = Svc::new(Kernel::Rbf { gamma: 0.5 }, 10.0)
            .fit(&data, &labels)
            .unwrap();
        let correct = data
            .iter()
            .zip(&labels)
            .filter(|(x, &l)| model.predict(x) == l)
            .count();
        assert!(
            correct == data.len(),
            "case {case}: only {correct}/{} correct on separable data",
            data.len()
        );
    });
}

#[test]
fn svc_dual_constraint_holds() {
    check::cases(40, |case, rng| {
        let base = points(rng, 6, 16, -1.0, 1.0);
        let mut data = base.clone();
        let mut labels = vec![true; base.len()];
        for p in &base {
            data.push(p.iter().map(|x| x + 4.0).collect());
            labels.push(false);
        }
        let c = 5.0;
        let model = Svc::new(Kernel::Rbf { gamma: 0.5 }, c)
            .fit(&data, &labels)
            .unwrap();
        let sum: f64 = model.coeffs.iter().sum();
        assert!(sum.abs() < 1e-6, "case {case}: sum alpha*y = {sum}");
        for &a in &model.coeffs {
            assert!(a.abs() <= c + 1e-9, "case {case}: alpha {a} beyond C");
        }
    });
}

#[test]
fn kernels_are_symmetric_and_bounded() {
    check::cases(128, |case, rng| {
        let u = check::vec_f64(rng, 4, -5.0, 5.0);
        let v = check::vec_f64(rng, 4, -5.0, 5.0);
        for k in [
            Kernel::Rbf { gamma: 0.3 },
            Kernel::Laplacian { sigma: 2.0 },
            Kernel::Linear,
        ] {
            assert!(
                (k.eval(&u, &v) - k.eval(&v, &u)).abs() < 1e-12,
                "case {case}: kernel not symmetric"
            );
        }
        // RBF/Laplacian in (0, 1], self-similarity exactly 1.
        for k in [Kernel::Rbf { gamma: 0.3 }, Kernel::Laplacian { sigma: 2.0 }] {
            let kv = k.eval(&u, &v);
            assert!(kv > 0.0 && kv <= 1.0, "case {case}: k = {kv}");
            assert!(
                (k.eval(&u, &u) - 1.0).abs() < 1e-12,
                "case {case}: k(u,u) != 1"
            );
        }
    });
}

#[test]
fn rbf_gram_matrix_is_psd() {
    check::cases(64, |case, rng| {
        let data = points(rng, 2, 10, -2.0, 2.0);
        // Mercer check: x^T G x >= 0 for random x (probe with a few
        // deterministic vectors derived from the data).
        let k = Kernel::Rbf { gamma: 0.8 };
        let g = k.gram(&data);
        let n = data.len();
        for probe_seed in 0..3u64 {
            let x: Vec<f64> = (0..n)
                .map(|i| (((i as u64 + 1) * (probe_seed + 3) * 2654435761) % 17) as f64 / 8.5 - 1.0)
                .collect();
            let mut quad = 0.0;
            for i in 0..n {
                for j in 0..n {
                    quad += x[i] * x[j] * g[i * n + j];
                }
            }
            assert!(quad >= -1e-8, "case {case}: x^T G x = {quad}");
        }
    });
}
