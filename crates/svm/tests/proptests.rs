//! Property-based tests for the SVM solvers.

use proptest::prelude::*;
use tsvr_svm::{Kernel, OneClassSvm, Svc};

/// Strategy: a cluster of points around a center with bounded spread.
fn points(n: std::ops::Range<usize>, lo: f64, hi: f64) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(lo..hi, 3), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn oneclass_nu_property(data in points(10..60, -1.0, 1.0), nu in 0.05f64..0.6) {
        let model = OneClassSvm::new(Kernel::Rbf { gamma: 1.0 }, nu)
            .fit(&data)
            .unwrap();
        let n = data.len() as f64;
        // Count strict outliers with a tolerance above the solver's
        // KKT threshold: boundary SVs land within ±tolerance of zero.
        let outliers = data.iter().filter(|x| model.decision(x) < -1e-5).count() as f64;
        // ν-property with finite-sample slack (±2 points): the exact
        // statement is asymptotic.
        prop_assert!(outliers / n <= nu + 2.0 / n + 1e-9,
            "outliers {outliers}/{n} exceed nu {nu}");
        prop_assert!(model.support_count() as f64 / n >= nu - 2.0 / n - 1e-9,
            "SVs {} below nu {nu}", model.support_count());
    }

    #[test]
    fn oneclass_alphas_sum_to_one(data in points(5..40, -2.0, 2.0), nu in 0.1f64..0.8) {
        let model = OneClassSvm::new(Kernel::Rbf { gamma: 0.7 }, nu)
            .fit(&data)
            .unwrap();
        let sum: f64 = model.coeffs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-7, "sum alpha = {sum}");
        let c = 1.0 / (nu * data.len() as f64);
        for &a in &model.coeffs {
            prop_assert!(a > 0.0 && a <= c + 1e-9);
        }
    }

    #[test]
    fn oneclass_decision_invariant_to_duplication(data in points(5..20, -1.0, 1.0)) {
        // Training on the same data twice over yields (approximately)
        // the same decision boundary: the dual is scale-structured.
        let m1 = OneClassSvm::new(Kernel::Rbf { gamma: 1.0 }, 0.3).fit(&data).unwrap();
        let doubled: Vec<Vec<f64>> = data.iter().chain(data.iter()).cloned().collect();
        let m2 = OneClassSvm::new(Kernel::Rbf { gamma: 1.0 }, 0.3).fit(&doubled).unwrap();
        for probe in data.iter().take(5) {
            let d1 = m1.decision(probe);
            let d2 = m2.decision(probe);
            prop_assert!((d1 - d2).abs() < 0.05, "{d1} vs {d2}");
        }
    }

    #[test]
    fn svc_separates_translated_clusters(
        base in points(6..20, -0.8, 0.8),
        shift in 3.0f64..6.0,
    ) {
        // Positive cluster = base; negative = base translated by shift.
        let mut data = base.clone();
        let mut labels = vec![true; base.len()];
        for p in &base {
            data.push(p.iter().map(|x| x + shift).collect());
            labels.push(false);
        }
        let model = Svc::new(Kernel::Rbf { gamma: 0.5 }, 10.0)
            .fit(&data, &labels)
            .unwrap();
        let correct = data
            .iter()
            .zip(&labels)
            .filter(|(x, &l)| model.predict(x) == l)
            .count();
        prop_assert!(correct == data.len(),
            "only {correct}/{} correct on separable data", data.len());
    }

    #[test]
    fn svc_dual_constraint_holds(base in points(6..16, -1.0, 1.0)) {
        let mut data = base.clone();
        let mut labels = vec![true; base.len()];
        for p in &base {
            data.push(p.iter().map(|x| x + 4.0).collect());
            labels.push(false);
        }
        let c = 5.0;
        let model = Svc::new(Kernel::Rbf { gamma: 0.5 }, c).fit(&data, &labels).unwrap();
        let sum: f64 = model.coeffs.iter().sum();
        prop_assert!(sum.abs() < 1e-6, "sum alpha*y = {sum}");
        for &a in &model.coeffs {
            prop_assert!(a.abs() <= c + 1e-9);
        }
    }

    #[test]
    fn kernels_are_symmetric_and_bounded(
        u in prop::collection::vec(-5.0f64..5.0, 4),
        v in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        for k in [
            Kernel::Rbf { gamma: 0.3 },
            Kernel::Laplacian { sigma: 2.0 },
            Kernel::Linear,
        ] {
            prop_assert!((k.eval(&u, &v) - k.eval(&v, &u)).abs() < 1e-12);
        }
        // RBF/Laplacian in (0, 1], self-similarity exactly 1.
        for k in [Kernel::Rbf { gamma: 0.3 }, Kernel::Laplacian { sigma: 2.0 }] {
            let kv = k.eval(&u, &v);
            prop_assert!(kv > 0.0 && kv <= 1.0);
            prop_assert!((k.eval(&u, &u) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rbf_gram_matrix_is_psd(data in points(2..10, -2.0, 2.0)) {
        // Mercer check: x^T G x >= 0 for random x (probe with a few
        // deterministic vectors derived from the data).
        let k = Kernel::Rbf { gamma: 0.8 };
        let g = k.gram(&data);
        let n = data.len();
        for probe_seed in 0..3u64 {
            let x: Vec<f64> = (0..n)
                .map(|i| (((i as u64 + 1) * (probe_seed + 3) * 2654435761) % 17) as f64 / 8.5 - 1.0)
                .collect();
            let mut quad = 0.0;
            for i in 0..n {
                for j in 0..n {
                    quad += x[i] * x[j] * g[i * n + j];
                }
            }
            prop_assert!(quad >= -1e-8, "x^T G x = {quad}");
        }
    }
}
