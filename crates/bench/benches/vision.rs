//! Vision-stack benchmarks: rendering, background subtraction, SPCPE
//! refinement, blob extraction and tracking, at the paper's QVGA frame
//! size.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tsvr_sim::{Scenario, ScenarioKind, World};
use tsvr_vision::background::BackgroundModel;
use tsvr_vision::blob::extract_blobs;
use tsvr_vision::render::Renderer;
use tsvr_vision::spcpe;
use tsvr_vision::tracker::{Tracker, TrackerConfig};

fn busy_frame_setup() -> (Renderer, tsvr_sim::world::SimOutput) {
    let mut scenario = Scenario::tunnel_small(5);
    scenario.mean_spawn_interval = 60.0; // busier scene
    let sim = World::run(scenario);
    let renderer = Renderer::new(ScenarioKind::Tunnel, sim.width, sim.height);
    (renderer, sim)
}

fn bench_render(c: &mut Criterion) {
    let (renderer, sim) = busy_frame_setup();
    let frame = sim.frames.iter().max_by_key(|f| f.vehicles.len()).unwrap();
    c.bench_function("render_320x240", |b| {
        b.iter(|| renderer.render(black_box(&frame.vehicles), frame.frame))
    });
}

fn bench_subtract_and_segment(c: &mut Criterion) {
    let (renderer, sim) = busy_frame_setup();
    let obs = sim.frames.iter().max_by_key(|f| f.vehicles.len()).unwrap();
    let frame = renderer.render(&obs.vehicles, obs.frame);
    let bg = BackgroundModel::from_frame(renderer.background());

    c.bench_function("background_subtract_320x240", |b| {
        b.iter_batched(
            || bg.clone(),
            |mut bg| bg.subtract_and_update(black_box(&frame)),
            BatchSize::SmallInput,
        )
    });

    let diff = frame.abs_diff(renderer.background());
    let mask = bg.subtract(&frame);
    c.bench_function("spcpe_refine_320x240", |b| {
        b.iter(|| spcpe::refine(black_box(&diff), black_box(&mask)))
    });
    let refined = spcpe::refine(&diff, &mask).mask;
    c.bench_function("blob_extract_320x240", |b| {
        b.iter(|| extract_blobs(black_box(&refined), 60, Some(&frame)))
    });
}

fn bench_tracking(c: &mut Criterion) {
    let (renderer, sim) = busy_frame_setup();
    // Pre-extract blobs for 60 frames.
    let mut bg = BackgroundModel::from_frame(renderer.background());
    let blob_seq: Vec<_> = sim
        .frames
        .iter()
        .take(60)
        .map(|obs| {
            let frame = renderer.render(&obs.vehicles, obs.frame);
            let mask = bg.subtract_and_update(&frame);
            extract_blobs(&mask, 60, Some(&frame))
        })
        .collect();
    c.bench_function("tracker_60_frames", |b| {
        b.iter(|| {
            let mut tk = Tracker::new(TrackerConfig::default());
            for (i, blobs) in blob_seq.iter().enumerate() {
                tk.step(i as u32, black_box(blobs));
            }
            tk.finish()
        })
    });
}

criterion_group!(
    benches,
    bench_render,
    bench_subtract_and_segment,
    bench_tracking
);
criterion_main!(benches);
