//! Vision-stack benchmarks: rendering, background subtraction, SPCPE
//! refinement, blob extraction and tracking, at the paper's QVGA frame
//! size.

use std::hint::black_box;
use tsvr_bench::harness::Bencher;
use tsvr_sim::{Scenario, ScenarioKind, World};
use tsvr_vision::background::BackgroundModel;
use tsvr_vision::blob::extract_blobs;
use tsvr_vision::render::Renderer;
use tsvr_vision::spcpe;
use tsvr_vision::tracker::{Tracker, TrackerConfig};

fn busy_frame_setup() -> (Renderer, tsvr_sim::world::SimOutput) {
    let mut scenario = Scenario::tunnel_small(5);
    scenario.mean_spawn_interval = 60.0; // busier scene
    let sim = World::run(scenario);
    let renderer = Renderer::new(ScenarioKind::Tunnel, sim.width, sim.height);
    (renderer, sim)
}

fn main() {
    let mut b = Bencher::new("vision");
    let (renderer, sim) = busy_frame_setup();
    let obs = sim.frames.iter().max_by_key(|f| f.vehicles.len()).unwrap();

    b.bench("render_320x240", || {
        renderer.render(black_box(&obs.vehicles), obs.frame)
    });

    let frame = renderer.render(&obs.vehicles, obs.frame);
    let bg = BackgroundModel::from_frame(renderer.background());
    b.bench("background_subtract_320x240", || {
        bg.clone().subtract_and_update(black_box(&frame))
    });

    let diff = frame.abs_diff(renderer.background());
    let mask = bg.subtract(&frame);
    b.bench("spcpe_refine_320x240", || {
        spcpe::refine(black_box(&diff), black_box(&mask))
    });

    let refined = spcpe::refine(&diff, &mask).mask;
    b.bench("blob_extract_320x240", || {
        extract_blobs(black_box(&refined), 60, Some(&frame))
    });

    // Pre-extract blobs for 60 frames, then time tracking alone.
    let mut bg = BackgroundModel::from_frame(renderer.background());
    let blob_seq: Vec<_> = sim
        .frames
        .iter()
        .take(60)
        .map(|obs| {
            let frame = renderer.render(&obs.vehicles, obs.frame);
            let mask = bg.subtract_and_update(&frame);
            extract_blobs(&mask, 60, Some(&frame))
        })
        .collect();
    b.bench("tracker_60_frames", || {
        let mut tk = Tracker::new(TrackerConfig::default());
        for (i, blobs) in blob_seq.iter().enumerate() {
            tk.step(i as u32, black_box(blobs));
        }
        tk.finish()
    });
}
