//! Video-database benchmarks: clip ingestion, cold and cached loads,
//! catalog rebuild on reopen, and metadata queries.

use std::hint::black_box;
use tsvr_bench::harness::Bencher;
use tsvr_viddb::{ClipBundle, ClipMeta, IncidentRow, SequenceRow, TrackRow, VideoDb, WindowRow};

/// A realistically sized bundle (~25 tracks x 80 centroids, ~70 windows).
fn bundle(clip_id: u64) -> ClipBundle {
    let tracks: Vec<TrackRow> = (0..25)
        .map(|t| TrackRow {
            track_id: t,
            start_frame: (t * 16) as u32,
            centroids: (0..80)
                .map(|i| (i as f32 * 3.0, 100.0 + (t as f32 * 7.0) % 40.0))
                .collect(),
        })
        .collect();
    let windows: Vec<WindowRow> = (0..70)
        .map(|w| WindowRow {
            window_index: w,
            start_frame: w * 15,
            end_frame: w * 15 + 14,
            sequences: (0..2)
                .map(|s| SequenceRow {
                    track_id: s,
                    alphas: vec![[0.01, 0.2, 0.0]; 3],
                })
                .collect(),
        })
        .collect();
    ClipBundle {
        meta: ClipMeta {
            clip_id,
            name: format!("bench clip {clip_id}"),
            location: "tunnel-17".into(),
            camera: "cam-03".into(),
            start_time: 1_167_609_600 + clip_id,
            frame_count: 2504,
            width: 320,
            height: 240,
        },
        tracks,
        windows,
        incidents: vec![IncidentRow {
            kind: "wall_crash".into(),
            start_frame: 230,
            end_frame: 252,
            vehicle_ids: vec![3],
        }],
    }
}

fn main() {
    let mut b = Bencher::new("viddb");

    let b0 = bundle(1);
    b.bench("db_put_clip", || {
        let mut db = VideoDb::in_memory();
        db.put_clip(black_box(&b0)).unwrap()
    });

    let mut db = VideoDb::in_memory();
    for id in 1..=20 {
        db.put_clip(&bundle(id)).unwrap();
    }
    // Cached load (cache capacity 8; repeat same id).
    b.bench("db_load_clip_cached", || db.load_clip(black_box(3)).unwrap());
    // Cold loads: cycle through more clips than the cache holds.
    let mut id = 0u64;
    b.bench("db_load_clip_cold", || {
        id = id % 20 + 1;
        db.load_clip(black_box(id)).unwrap()
    });

    let mut db = VideoDb::in_memory();
    for id in 1..=100 {
        let mut bun = bundle(id);
        bun.meta.location = format!("loc-{}", id % 7);
        db.put_clip(&bun).unwrap();
    }
    b.bench("db_find_by_location_100_clips", || {
        db.find_by_location(black_box("loc-3")).len()
    });
    b.bench("db_find_by_time_range_100_clips", || {
        db.find_by_time_range(1_167_609_620, 1_167_609_660).len()
    });

    let mut path = std::env::temp_dir();
    path.push(format!("tsvr-bench-reopen-{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let mut db = VideoDb::open(&path).unwrap();
        for id in 1..=10 {
            db.put_clip(&bundle(id)).unwrap();
        }
    }
    b.bench("db_reopen_10_clips", || {
        VideoDb::open(black_box(&path)).unwrap().clip_count()
    });
    let _ = std::fs::remove_file(&path);
}
