//! One-class SVM training/prediction benchmarks at the scales the
//! retrieval loop actually hits (tens of 9-D training vectors, a few
//! hundred scored bags per round).

use std::hint::black_box;
use tsvr_bench::harness::Bencher;
use tsvr_svm::{Kernel, OneClassSvm};

fn synth(n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| (((i * 37 + d * 101) % 97) as f64 / 97.0) * 0.8)
                .collect()
        })
        .collect()
}

fn main() {
    let mut b = Bencher::new("svm");

    for n in [16usize, 64, 256] {
        let data = synth(n, 9);
        b.bench(&format!("ocsvm_train/rbf_n{n}_d9"), || {
            OneClassSvm::new(Kernel::Rbf { gamma: 2.0 }, 0.2)
                .fit(black_box(&data))
                .unwrap()
        });
    }

    let data = synth(64, 9);
    let model = OneClassSvm::new(Kernel::Rbf { gamma: 2.0 }, 0.2)
        .fit(&data)
        .unwrap();
    let probes = synth(500, 9);
    b.bench("ocsvm_decide_500x9", || {
        let mut acc = 0.0;
        for p in &probes {
            acc += model.decision(black_box(p));
        }
        acc
    });

    let u: Vec<f64> = (0..9).map(|i| i as f64 * 0.1).collect();
    let v: Vec<f64> = (0..9).map(|i| (9 - i) as f64 * 0.1).collect();
    for (name, k) in [
        ("linear", Kernel::Linear),
        ("rbf", Kernel::Rbf { gamma: 2.0 }),
        ("laplacian", Kernel::Laplacian { sigma: 1.0 }),
    ] {
        b.bench(&format!("kernel_eval/{name}"), || {
            k.eval(black_box(&u), black_box(&v))
        });
    }
}
