//! Retrieval-loop benchmarks: the figure-8/9 session machinery at its
//! real scale (a full feedback session over a small clip's bag database,
//! plus learner training and ranking in isolation).

use std::hint::black_box;
use tsvr_bench::harness::Bencher;
use tsvr_core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
use tsvr_mil::session::rank_by;
use tsvr_mil::{heuristic, GroundTruthOracle, Learner, SessionConfig};
use tsvr_sim::Scenario;
use tsvr_svm::Kernel;

fn main() {
    let mut b = Bencher::new("retrieval");
    let clip = prepare_clip(&Scenario::tunnel_small(7), &PipelineOptions::default());
    let cfg = SessionConfig {
        top_n: 10,
        feedback_rounds: 4,
        ..SessionConfig::default()
    };

    b.bench("session_ocsvm_small_clip", || {
        run_session(
            black_box(&clip),
            &EventQuery::accidents(),
            LearnerKind::paper_ocsvm(),
            cfg,
        )
    });
    b.bench("session_weighted_rf_small_clip", || {
        run_session(
            black_box(&clip),
            &EventQuery::accidents(),
            LearnerKind::paper_weighted_rf(),
            cfg,
        )
    });

    b.bench("heuristic_rank_all_bags", || {
        rank_by(black_box(&clip.bags), heuristic::bag_score)
    });

    let labels = clip.labels(&EventQuery::accidents());
    let _oracle = GroundTruthOracle::new(labels.clone());
    let feedback: Vec<(usize, bool)> = clip
        .bags
        .iter()
        .take(10)
        .map(|b| (b.id, labels[b.id]))
        .collect();
    b.bench("ocsvm_learn_one_round", || {
        let mut l = tsvr_mil::OcSvmMilLearner::new(Kernel::Rbf { gamma: 10.0 });
        l.learn(black_box(&clip.bags), black_box(&feedback));
        l
    });

    let scenario = Scenario::tunnel_small(7);
    b.bench("prepare_clip/tunnel_400_frames", || {
        prepare_clip(black_box(&scenario), &PipelineOptions::default())
    });
}
