//! Retrieval-loop benchmarks: the figure-8/9 session machinery at its
//! real scale (a full feedback session over a small clip's bag database,
//! plus learner training and ranking in isolation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsvr_core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
use tsvr_mil::session::rank_by;
use tsvr_mil::{heuristic, GroundTruthOracle, Learner, SessionConfig};
use tsvr_sim::Scenario;
use tsvr_svm::Kernel;

fn bench_session(c: &mut Criterion) {
    let clip = prepare_clip(&Scenario::tunnel_small(7), &PipelineOptions::default());
    let cfg = SessionConfig {
        top_n: 10,
        feedback_rounds: 4,
        ..SessionConfig::default()
    };
    c.bench_function("session_ocsvm_small_clip", |b| {
        b.iter(|| {
            run_session(
                black_box(&clip),
                &EventQuery::accidents(),
                LearnerKind::paper_ocsvm(),
                cfg,
            )
        })
    });
    c.bench_function("session_weighted_rf_small_clip", |b| {
        b.iter(|| {
            run_session(
                black_box(&clip),
                &EventQuery::accidents(),
                LearnerKind::paper_weighted_rf(),
                cfg,
            )
        })
    });
}

fn bench_components(c: &mut Criterion) {
    let clip = prepare_clip(&Scenario::tunnel_small(7), &PipelineOptions::default());
    c.bench_function("heuristic_rank_all_bags", |b| {
        b.iter(|| rank_by(black_box(&clip.bags), heuristic::bag_score))
    });

    let labels = clip.labels(&EventQuery::accidents());
    let _oracle = GroundTruthOracle::new(labels.clone());
    let feedback: Vec<(usize, bool)> = clip
        .bags
        .iter()
        .take(10)
        .map(|b| (b.id, labels[b.id]))
        .collect();
    c.bench_function("ocsvm_learn_one_round", |b| {
        b.iter(|| {
            let mut l = tsvr_mil::OcSvmMilLearner::new(Kernel::Rbf { gamma: 10.0 });
            l.learn(black_box(&clip.bags), black_box(&feedback));
            l
        })
    });
}

fn bench_prepare(c: &mut Criterion) {
    let mut g = c.benchmark_group("prepare_clip");
    g.sample_size(10);
    let scenario = Scenario::tunnel_small(7);
    g.bench_function("tunnel_400_frames", |b| {
        b.iter(|| prepare_clip(black_box(&scenario), &PipelineOptions::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_session, bench_components, bench_prepare);
criterion_main!(benches);
