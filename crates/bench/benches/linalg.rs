//! Microbenchmarks for the numerical substrate: the polynomial
//! trajectory fit (paper §3.2) and the PCA eigen path.

use std::hint::black_box;
use tsvr_bench::harness::Bencher;
use tsvr_linalg::decomp::{solve, solve_least_squares};
use tsvr_linalg::eigen::symmetric_eigen;
use tsvr_linalg::polyfit;
use tsvr_linalg::Matrix;

fn trajectory_samples(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| 100.0 + 3.0 * x - 0.01 * x * x + ((x * 0.7).sin()))
        .collect();
    (xs, ys)
}

fn main() {
    let mut b = Bencher::new("linalg");

    for n in [25usize, 100, 500] {
        let (xs, ys) = trajectory_samples(n);
        b.bench(&format!("polyfit/degree4_n{n}"), || {
            polyfit::fit(black_box(&xs), black_box(&ys), 4).unwrap()
        });
    }

    let n = 12;
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = ((i * 31 + j * 17) % 13) as f64 / 13.0;
        }
        a[(i, i)] += n as f64;
    }
    let b_vec: Vec<f64> = (0..n).map(|i| i as f64).collect();
    b.bench("lu_solve_12x12", || {
        solve(black_box(&a), black_box(&b_vec)).unwrap()
    });
    b.bench("qr_least_squares_12x12", || {
        solve_least_squares(black_box(&a), black_box(&b_vec)).unwrap()
    });

    // Covariance-sized problems for the PCA classifier (6 features).
    let n = 6;
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
        }
    }
    b.bench("jacobi_eigen_6x6", || {
        symmetric_eigen(black_box(&m)).unwrap()
    });
}
