//! Microbenchmarks for the numerical substrate: the polynomial
//! trajectory fit (paper §3.2) and the PCA eigen path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tsvr_linalg::decomp::{solve, solve_least_squares};
use tsvr_linalg::eigen::symmetric_eigen;
use tsvr_linalg::polyfit;
use tsvr_linalg::Matrix;

fn trajectory_samples(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| 100.0 + 3.0 * x - 0.01 * x * x + ((x * 0.7).sin()))
        .collect();
    (xs, ys)
}

fn bench_polyfit(c: &mut Criterion) {
    let mut g = c.benchmark_group("polyfit");
    for &n in &[25usize, 100, 500] {
        let (xs, ys) = trajectory_samples(n);
        g.bench_function(format!("degree4_n{n}"), |b| {
            b.iter(|| polyfit::fit(black_box(&xs), black_box(&ys), 4).unwrap())
        });
    }
    g.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let n = 12;
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = ((i * 31 + j * 17) % 13) as f64 / 13.0;
        }
        a[(i, i)] += n as f64;
    }
    let b_vec: Vec<f64> = (0..n).map(|i| i as f64).collect();
    c.bench_function("lu_solve_12x12", |b| {
        b.iter(|| solve(black_box(&a), black_box(&b_vec)).unwrap())
    });
    c.bench_function("qr_least_squares_12x12", |b| {
        b.iter(|| solve_least_squares(black_box(&a), black_box(&b_vec)).unwrap())
    });
}

fn bench_eigen(c: &mut Criterion) {
    // Covariance-sized problems for the PCA classifier (6 features).
    let n = 6;
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            m[(i, j)] = v;
        }
    }
    c.bench_function("jacobi_eigen_6x6", |b| {
        b.iter_batched(
            || m.clone(),
            |m| symmetric_eigen(black_box(&m)).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_polyfit, bench_solvers, bench_eigen);
criterion_main!(benches);
