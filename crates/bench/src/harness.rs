//! A minimal timing harness for the `benches/` targets.
//!
//! The workspace builds fully offline, so the bench targets are plain
//! `fn main` binaries (`harness = false`) driving this module instead
//! of an external benchmark framework. Each benchmark is warmed up,
//! auto-calibrated to a target batch duration, then timed over several
//! batches; the median batch is reported as ns/iter.
//!
//! Set `TSVR_BENCH_FAST=1` to run every benchmark for a single short
//! batch — used by CI smoke runs where wall time matters more than
//! measurement quality.

use std::time::{Duration, Instant};

/// Target wall time per measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(50);
/// Measured batches per benchmark (median is reported).
const BATCHES: usize = 7;

fn fast_mode() -> bool {
    std::env::var_os("TSVR_BENCH_FAST").is_some_and(|v| v != "0")
}

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name as printed.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per measured batch.
    pub iters: u64,
}

/// A named group of benchmarks, printed like libtest's bench output.
pub struct Bencher {
    group: String,
    results: Vec<Measurement>,
}

impl Bencher {
    /// Start a group; `group` prefixes every benchmark name.
    pub fn new(group: &str) -> Self {
        Bencher {
            group: group.to_string(),
            results: Vec::new(),
        }
    }

    /// Time `f`, which must consume its computation (return or
    /// otherwise observe it) so the optimizer keeps the work.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) -> &Measurement {
        // Warm up and calibrate: find an iteration count whose batch
        // lands near the target duration.
        let mut iters: u64 = 1;
        let calibrated = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= BATCH_TARGET || iters >= 1 << 30 {
                break iters;
            }
            let scale = BATCH_TARGET.as_secs_f64() / dt.as_secs_f64().max(1e-9);
            iters = (iters as f64 * scale.clamp(1.5, 100.0)).ceil() as u64;
        };
        let batches = if fast_mode() { 1 } else { BATCHES };
        let iters = if fast_mode() { calibrated.min(3) } else { calibrated };
        let mut samples: Vec<f64> = (0..batches)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let full = format!("{}/{}", self.group, name);
        println!("bench: {full:<44} {:>12.1} ns/iter ({iters} iters)", median);
        self.results.push(Measurement {
            name: full,
            ns_per_iter: median,
            iters,
        });
        self.results.last().expect("just pushed")
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}
