//! Calibration helper: sweeps fixed RBF gammas and the median scale.
use tsvr_bench::{clip1, clip2, paper_session, PAPER_SEED};
use tsvr_core::EventQuery;
use tsvr_mil::{GroundTruthOracle, OcSvmMilLearner, RetrievalSession};
use tsvr_svm::Kernel;

fn main() {
    let c1 = clip1(PAPER_SEED);
    let c2 = clip2(PAPER_SEED);
    let g1 = tsvr_core::pipeline::median_heuristic_gamma(&c1.bags);
    let g2 = tsvr_core::pipeline::median_heuristic_gamma(&c2.bags);
    println!("median gammas: clip1 {g1:.2} clip2 {g2:.2}");
    for mult in [0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0] {
        let mut accs = Vec::new();
        for (clip, g) in [(&c1, g1), (&c2, g2)] {
            let l = OcSvmMilLearner::new(Kernel::Rbf {
                gamma: g * mult / 4.0,
            });
            let oracle = GroundTruthOracle::new(clip.labels(&EventQuery::accidents()));
            let (r, _) = RetrievalSession::new(&clip.bags, l, &oracle, paper_session()).run();
            accs.push(
                r.accuracies
                    .iter()
                    .map(|a| (a * 100.0).round() as u32)
                    .collect::<Vec<_>>(),
            );
        }
        println!("mult {mult:>4}: clip1 {:?} clip2 {:?}", accs[0], accs[1]);
    }
}
