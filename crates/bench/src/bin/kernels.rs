//! Measures the kernel-layer restructuring and writes
//! `BENCH_kernels.json`.
//!
//! Four components, each timed **paired** against its pre-change
//! baseline (the naive implementation each optimization replaced) with
//! a bit-identity assert, so a speedup can never be bought with a
//! changed result:
//!
//! * **gram** — [`Kernel::gram`]'s flat-SoA fused evaluation vs the
//!   per-pair scalar `Kernel::eval` upper-triangle loop it replaced.
//! * **decision** — [`OneClassModel::decision_batch`]'s blocked fused
//!   expansion vs a per-support-vector scalar loop, at 1 thread and at
//!   `max(4, available_parallelism)` threads (all three bit-identical).
//! * **dtw** — the rolling two-row [`dtw_distance`] vs the full-matrix
//!   DP it replaced.
//! * **memo** — an [`OcSvmMilLearner`] driven through the paper's
//!   feedback rounds with cross-round Gram memoization vs the
//!   from-scratch retrain (`without_gram_memo`), rankings byte-equal
//!   at 1 and n threads. This is the per-round re-rank latency the
//!   issue targets; the no-memo timing in the JSON *is* the recorded
//!   pre-change baseline.
//!
//! `TSVR_BENCH_FAST=1` shrinks problem sizes and rounds and gates only
//! on identity (CI smoke); the full run also gates on measured
//! speedups.

use std::time::Instant;
use tsvr_core::median_heuristic_gamma;
use tsvr_mil::session::rank_scores;
use tsvr_mil::{Bag, Instance, Learner, OcSvmMilLearner};
use tsvr_obs::json::Json;
use tsvr_sim::Vec2;
use tsvr_svm::{Kernel, OneClassModel, OneClassSvm};
use tsvr_trajectory::dtw::dtw_distance;

/// Times one invocation in nanoseconds.
fn time_one<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_nanos() as f64, out)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Deterministic xorshift feature vectors in the pipeline's dim-9
/// normalized range.
fn synth_vectors(n: usize, dim: usize, salt: u64) -> Vec<Vec<f64>> {
    let mut state = 0x9e37_79b9_7f4a_7c15_u64 ^ salt;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| (0..dim).map(|_| next()).collect()).collect()
}

/// The pre-change Gram construction: scalar `eval` per pair over the
/// upper triangle, mirrored.
fn naive_gram(kernel: Kernel, data: &[Vec<f64>]) -> Vec<f64> {
    let n = data.len();
    let mut g = vec![0.0; n * n];
    for i in 0..n {
        for j in i..n {
            let k = kernel.eval(&data[i], &data[j]);
            g[i * n + j] = k;
            g[j * n + i] = k;
        }
    }
    g
}

/// The pre-change decision function: scalar `eval` per support vector.
fn naive_decision_batch(m: &OneClassModel, xs: &[Vec<f64>]) -> Vec<f64> {
    xs.iter()
        .map(|x| {
            let mut s = 0.0;
            for (a, sv) in m.coeffs.iter().zip(&m.support) {
                s += a * m.kernel.eval(sv, x);
            }
            s - m.rho
        })
        .collect()
}

/// The pre-change DTW: full n×m cost/steps matrices.
fn naive_dtw(a: &[Vec2], b: &[Vec2]) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    let idx = |i: usize, j: usize| i * m + j;
    let mut cost = vec![f64::INFINITY; n * m];
    let mut steps = vec![0u32; n * m];
    cost[idx(0, 0)] = a[0].dist(b[0]);
    steps[idx(0, 0)] = 1;
    for i in 0..n {
        for j in 0..m {
            if i == 0 && j == 0 {
                continue;
            }
            let local = a[i].dist(b[j]);
            let mut best = f64::INFINITY;
            let mut best_steps = 0;
            if i > 0 && cost[idx(i - 1, j)] < best {
                best = cost[idx(i - 1, j)];
                best_steps = steps[idx(i - 1, j)];
            }
            if j > 0 && cost[idx(i, j - 1)] < best {
                best = cost[idx(i, j - 1)];
                best_steps = steps[idx(i, j - 1)];
            }
            if i > 0 && j > 0 && cost[idx(i - 1, j - 1)] < best {
                best = cost[idx(i - 1, j - 1)];
                best_steps = steps[idx(i - 1, j - 1)];
            }
            cost[idx(i, j)] = best + local;
            steps[idx(i, j)] = best_steps + 1;
        }
    }
    cost[idx(n - 1, m - 1)] / steps[idx(n - 1, m - 1)] as f64
}

/// A synthetic MIL database shaped like a prepared clip (dim-9
/// trajectory-sequence vectors, MIL max scoring): `n_hot` bags carry
/// accident-like instances, the rest only quiet traffic. Sized so the
/// cumulative training set across four feedback rounds reaches the
/// regime where Gram construction dominates retraining — real clips
/// hold a handful of relevant windows, too few to measure.
fn synth_database(n_bags: usize, n_hot: usize) -> (Vec<Bag>, Vec<bool>) {
    let mut bags = Vec::with_capacity(n_bags);
    let mut labels = Vec::with_capacity(n_bags);
    for i in 0..n_bags {
        let j = (i as f64 * 0.618).fract() * 0.05;
        let quiet = Instance::new(
            (i * 10) as u64,
            vec![
                vec![0.02 + j, 0.01, 0.0],
                vec![0.01, 0.03 + j, 0.01],
                vec![0.0, 0.02, 0.02 + j],
            ],
        );
        let mut instances = vec![quiet];
        let hot = i < n_hot;
        if hot {
            for v in 0..2u64 {
                let k = j + v as f64 * 0.013;
                instances.push(Instance::new(
                    (i * 10) as u64 + 1 + v,
                    vec![
                        vec![0.05, 0.1 + k, 0.02],
                        vec![0.3 + k, 0.8 - k, 0.6],
                        vec![0.2, 0.3 + k, 0.1],
                    ],
                ));
            }
        }
        bags.push(Bag::new(i, instances));
        labels.push(hot);
    }
    (bags, labels)
}

fn synth_polyline(len: usize, salt: u64) -> Vec<Vec2> {
    (0..len)
        .map(|i| {
            let t = i as f64 / len as f64;
            let wob = ((salt % 7) as f64 + 1.0) * t * 6.0;
            Vec2::new(t * 40.0 + wob.sin(), 10.0 * t * t + wob.cos())
        })
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) -> bool {
    if a.len() != b.len() {
        eprintln!("IDENTITY FAIL ({what}): lengths {} vs {}", a.len(), b.len());
        return false;
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.to_bits() != y.to_bits() {
            eprintln!("IDENTITY FAIL ({what}): index {i}: {x} vs {y}");
            return false;
        }
    }
    true
}

/// Replays the paper's feedback schedule against the clip database and
/// returns (total learn ns, final ranking).
fn drive_rounds(
    mut learner: OcSvmMilLearner,
    bags: &[tsvr_mil::Bag],
    schedule: &[Vec<(usize, bool)>],
) -> (f64, Vec<usize>) {
    let mut learn_ns = 0.0;
    for fb in schedule {
        let (ns, ()) = time_one(|| learner.learn(bags, fb));
        learn_ns += ns;
    }
    let ranking = rank_scores(bags, &learner.score_all(bags));
    (learn_ns, ranking)
}

fn main() {
    let fast = std::env::var_os("TSVR_BENCH_FAST").is_some_and(|v| v != "0");
    let (rounds, gram_n, probe_n, dtw_len, db_bags, db_hot) = if fast {
        (3usize, 64usize, 200usize, 60usize, 80usize, 24usize)
    } else {
        (7usize, 160usize, 2000usize, 1024usize, 240usize, 64usize)
    };
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let many = available.max(4);
    eprintln!(
        "kernels bench: {rounds} paired rounds, gram n={gram_n}, {probe_n} probes, \
         dtw len={dtw_len}, {db_bags}-bag database ({db_hot} relevant), threads 1 vs {many}"
    );

    let (bags, labels) = synth_database(db_bags, db_hot);
    let gamma = median_heuristic_gamma(&bags);
    let kernel = Kernel::Rbf { gamma };

    // --- gram: SoA fused vs scalar upper-triangle ---------------------
    let gram_data = synth_vectors(gram_n, 9, 0xA1);
    tsvr_par::set_threads(1);
    let mut gram_naive_ns = Vec::new();
    let mut gram_soa_ns = Vec::new();
    let mut gram_identical = true;
    for _ in 0..rounds {
        let (t_naive, g_naive) = time_one(|| naive_gram(kernel, &gram_data));
        let (t_soa, g_soa) = time_one(|| kernel.gram(&gram_data));
        gram_identical &= assert_bits_eq(&g_naive, &g_soa, "gram");
        gram_naive_ns.push(t_naive);
        gram_soa_ns.push(t_soa);
    }
    let gram_ns_naive = median(&mut gram_naive_ns);
    let gram_ns_soa = median(&mut gram_soa_ns);
    let gram_speedup = gram_ns_naive / gram_ns_soa;
    println!("gram {gram_n}x{gram_n}: scalar {gram_ns_naive:.0}ns -> SoA {gram_ns_soa:.0}ns ({gram_speedup:.2}x), identical={gram_identical}");

    // --- decision: fused block expansion vs scalar loop ---------------
    let train = synth_vectors(96, 9, 0xB2);
    let probes = synth_vectors(probe_n, 9, 0xC3);
    let model = OneClassSvm::new(kernel, 0.2)
        .fit(&train)
        .expect("fit decision-bench model");
    let mut dec_naive_ns = Vec::new();
    let mut dec_1_ns = Vec::new();
    let mut dec_n_ns = Vec::new();
    let mut dec_identical = true;
    for _ in 0..rounds {
        tsvr_par::set_threads(1);
        let (t_naive, d_naive) = time_one(|| naive_decision_batch(&model, &probes));
        let (t_1, d_1) = time_one(|| model.decision_batch(&probes));
        tsvr_par::set_threads(many);
        let (t_n, d_n) = time_one(|| model.decision_batch(&probes));
        dec_identical &= assert_bits_eq(&d_naive, &d_1, "decision threads=1");
        dec_identical &= assert_bits_eq(&d_naive, &d_n, "decision threads=n");
        dec_naive_ns.push(t_naive);
        dec_1_ns.push(t_1);
        dec_n_ns.push(t_n);
    }
    tsvr_par::set_threads(1);
    let decision_ns_naive = median(&mut dec_naive_ns);
    let decision_ns_1 = median(&mut dec_1_ns);
    let decision_ns_n = median(&mut dec_n_ns);
    let decision_speedup = decision_ns_naive / decision_ns_1;
    println!(
        "decision {probe_n} probes x {} SVs: scalar {decision_ns_naive:.0}ns -> fused {decision_ns_1:.0}ns ({decision_speedup:.2}x), identical={dec_identical}",
        model.support.len()
    );

    // --- dtw: rolling two-row vs full matrix --------------------------
    // Long trajectories are the point of the restructure: a full
    // dtw_len² matrix overflows cache where two rolling rows stay
    // resident. Fast mode shrinks below that regime, so it gates on
    // identity only.
    let n_paths = if fast { 8 } else { 4 };
    let paths: Vec<Vec<Vec2>> = (0..n_paths).map(|s| synth_polyline(dtw_len, s)).collect();
    let all_pairs = |d: fn(&[Vec2], &[Vec2]) -> f64| -> Vec<f64> {
        let mut out = Vec::new();
        for a in &paths {
            for b in &paths {
                out.push(d(a, b));
            }
        }
        out
    };
    let mut dtw_naive_ns = Vec::new();
    let mut dtw_roll_ns = Vec::new();
    let mut dtw_identical = true;
    for _ in 0..rounds {
        let (t_full, d_full) = time_one(|| all_pairs(naive_dtw));
        let (t_roll, d_roll) = time_one(|| all_pairs(dtw_distance));
        dtw_identical &= assert_bits_eq(&d_full, &d_roll, "dtw");
        dtw_naive_ns.push(t_full);
        dtw_roll_ns.push(t_roll);
    }
    let dtw_ns_naive = median(&mut dtw_naive_ns);
    let dtw_ns_rolling = median(&mut dtw_roll_ns);
    let dtw_speedup = dtw_ns_naive / dtw_ns_rolling;
    println!("dtw {}x{dtw_len}-pt pairs: full-matrix {dtw_ns_naive:.0}ns -> rolling {dtw_ns_rolling:.0}ns ({dtw_speedup:.2}x), identical={dtw_identical}", paths.len() * paths.len());

    // --- memo: cross-round Gram memoization vs from-scratch -----------
    // The paper's protocol: label the top 20 of the current ranking
    // each round. The schedule is fixed from the heuristic ranking so
    // both learners replay identical feedback.
    let bags = &bags;
    let initial = rank_scores(bags, &tsvr_mil::heuristic::bag_scores(bags));
    let schedule: Vec<Vec<(usize, bool)>> = (0..4)
        .map(|r| {
            initial
                .iter()
                .skip(r * 20)
                .take(20)
                .map(|&b| (b, labels[b]))
                .collect()
        })
        .collect();
    let make = || OcSvmMilLearner::new(kernel);
    // Identity across memoization and thread count.
    tsvr_par::set_threads(1);
    let (_, rank_memo_1) = drive_rounds(make(), bags, &schedule);
    let (_, rank_fresh_1) = drive_rounds(make().without_gram_memo(), bags, &schedule);
    tsvr_par::set_threads(many);
    let (_, rank_memo_n) = drive_rounds(make(), bags, &schedule);
    tsvr_par::set_threads(1);
    let memo_identical =
        rank_memo_1 == rank_fresh_1 && rank_memo_1 == rank_memo_n;
    if !memo_identical {
        eprintln!("IDENTITY FAIL (memo): rankings differ across memoization/threads");
    }
    let mut memo_ns_v = Vec::new();
    let mut fresh_ns_v = Vec::new();
    for _ in 0..rounds {
        let (t_fresh, _) = drive_rounds(make().without_gram_memo(), bags, &schedule);
        let (t_memo, _) = drive_rounds(make(), bags, &schedule);
        fresh_ns_v.push(t_fresh);
        memo_ns_v.push(t_memo);
    }
    let memo_ns = median(&mut memo_ns_v);
    let memo_ns_baseline = median(&mut fresh_ns_v);
    let memo_speedup = memo_ns_baseline / memo_ns;
    println!("memo 4-round retrain: from-scratch {memo_ns_baseline:.0}ns -> memoized {memo_ns:.0}ns ({memo_speedup:.2}x), identical={memo_identical}");

    let identical = gram_identical && dec_identical && dtw_identical && memo_identical;
    // Identity always gates. The full run also gates on measured wins:
    // the memoized retrain (the issue's per-round re-rank latency) must
    // beat the recorded from-scratch baseline, and no component may
    // regress beyond noise.
    // The dtw gate is a regression guard only: the rolling rewrite is
    // a memory-footprint change (O(m) resident vs O(n·m)) and times
    // neutral where the local sqrt dominates.
    let pass = if fast {
        identical
    } else {
        identical
            && memo_speedup >= 1.10
            && gram_speedup >= 1.0
            && decision_speedup >= 1.0
            && dtw_speedup >= 0.85
    };
    let note = format!(
        "{}: identity={identical}, gram {gram_speedup:.2}x, decision {decision_speedup:.2}x, \
         dtw {dtw_speedup:.2}x, memoized retrain {memo_speedup:.2}x vs from-scratch baseline",
        if pass { "PASS" } else { "FAIL" }
    );
    println!("{note}");

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("kernels".into())),
        (
            "workload".into(),
            Json::Str(format!(
                "gram/decision/dtw micro + 4-round ocsvm retrain on a \
                 {db_bags}-bag synthetic database ({db_hot} relevant)"
            )),
        ),
        ("fast_mode".into(), Json::Bool(fast)),
        ("rounds".into(), Json::Num(rounds as f64)),
        ("available_parallelism".into(), Json::Num(available as f64)),
        ("gram_n".into(), Json::Num(gram_n as f64)),
        ("gram_ns_naive".into(), Json::Num(gram_ns_naive)),
        ("gram_ns_soa".into(), Json::Num(gram_ns_soa)),
        ("gram_speedup".into(), Json::Num(gram_speedup)),
        ("decision_probes".into(), Json::Num(probe_n as f64)),
        ("decision_ns_naive".into(), Json::Num(decision_ns_naive)),
        ("decision_ns_threads_1".into(), Json::Num(decision_ns_1)),
        ("decision_ns_threads_n".into(), Json::Num(decision_ns_n)),
        ("decision_speedup".into(), Json::Num(decision_speedup)),
        ("dtw_ns_naive".into(), Json::Num(dtw_ns_naive)),
        ("dtw_ns_rolling".into(), Json::Num(dtw_ns_rolling)),
        ("dtw_speedup".into(), Json::Num(dtw_speedup)),
        ("memo_ns_baseline".into(), Json::Num(memo_ns_baseline)),
        ("memo_ns".into(), Json::Num(memo_ns)),
        ("memo_speedup".into(), Json::Num(memo_speedup)),
        ("identical".into(), Json::Bool(identical)),
        ("pass".into(), Json::Bool(pass)),
        ("note".into(), Json::Str(note)),
    ]);
    let path = "BENCH_kernels.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}
