//! Extension analysis: precision/recall/AP per feedback round.
//!
//! The paper argues (§6.2) that precision and recall are "not
//! applicable" in a deployed large-scale system because the total number
//! of correct results is unknown — hence its accuracy@20 measure. With
//! simulated ground truth the totals *are* known, so this binary reports
//! what the paper could not: recall@20 and average precision per round,
//! for both clips and both methods.

use tsvr_bench::{clip1, clip2, run_accident_session, PAPER_SEED};
use tsvr_core::{EventQuery, LearnerKind};
use tsvr_mil::metrics::{average_precision, recall_at};

fn main() {
    println!("Precision/recall analysis (ground truth known — see paper §6.2)");
    println!("================================================================");
    for (name, clip) in [
        ("clip 1 (tunnel)", clip1(PAPER_SEED)),
        ("clip 2 (intersection)", clip2(PAPER_SEED)),
    ] {
        let labels = clip.labels(&EventQuery::accidents());
        println!(
            "\n{name}: {} relevant of {} windows",
            labels.iter().filter(|&&l| l).count(),
            labels.len()
        );
        println!(
            "{:<20}{:>7}{:>10}{:>12}{:>9}",
            "method", "round", "acc@20", "recall@20", "AP"
        );
        for kind in [LearnerKind::paper_ocsvm(), LearnerKind::paper_weighted_rf()] {
            let report = run_accident_session(&clip, kind);
            for (round, ranking) in report.rankings.iter().enumerate() {
                println!(
                    "{:<20}{:>7}{:>9.0}%{:>11.0}%{:>9.3}",
                    if round == 0 { report.learner } else { "" },
                    round,
                    report.accuracies[round] * 100.0,
                    recall_at(ranking, &labels, 20) * 100.0,
                    average_precision(ranking, &labels)
                );
            }
        }
    }
    println!("\nAP summarizes the entire ranking: it keeps separating the methods even\nwhen accuracy@20 saturates against the relevant-window ceiling.");
}
