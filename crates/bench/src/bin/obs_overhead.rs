//! Measures the wall-clock overhead of the tsvr-obs probes on the
//! retrieval hot path and writes `BENCH_obs_overhead.json`.
//!
//! The comparison runs inside one binary: the same OC-SVM retrieval
//! session is timed three ways — runtime kill switch on, on **with a
//! live request trace** (a root `tspan!` plus a retain-everything
//! slowlog, the worst-case serve configuration), and off
//! ([`tsvr_obs::set_enabled`]) — so all measurements share code, data,
//! and compiler flags.
//!
//! Probe cost is a handful of microseconds against a ~300µs workload —
//! far below the clock-frequency drift and scheduler interference a
//! sequential A-then-B-then-C comparison picks up over its multi-second
//! run (empirically ±10% between identical runs on a busy host). The
//! measurement is therefore **paired at iteration granularity**: each
//! round times one probes-off iteration, one probes-on, one traced, and
//! one more probes-off, all within ~1ms of each other, and the reported
//! overhead is the median of per-round differences against the round's
//! own bracketing baseline. Drift is linear over a millisecond (the
//! bracket averages it out) and interference spikes land on single
//! rounds (the median discards them). The acceptance target is < 2%
//! overhead for both the plain and the traced run; in a
//! `--no-default-features` build the probes are compiled out entirely
//! and all timings coincide.

use std::time::Instant;

use tsvr_bench::{clip1, paper_session, PAPER_SEED};
use tsvr_core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
use tsvr_obs::json::Json;
use tsvr_sim::Scenario;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    // The paper's clip 1 at the paper's protocol: probe cost is a fixed
    // handful of atomics per round, so it must be measured against a
    // realistically sized session, not a toy one. `TSVR_BENCH_FAST=1`
    // (scripts/ci.sh) swaps in the small tunnel clip for a smoke run.
    let fast = std::env::var_os("TSVR_BENCH_FAST").is_some_and(|v| v != "0");
    let clip = if fast {
        eprintln!("preparing tunnel_small (fast mode)...");
        prepare_clip(
            &Scenario::tunnel_small(PAPER_SEED),
            &PipelineOptions::default(),
        )
    } else {
        eprintln!("preparing clip 1 (tunnel, 2504 frames)...");
        clip1(PAPER_SEED)
    };
    let cfg = paper_session();
    let workload = || {
        run_session(
            &clip,
            &EventQuery::accidents(),
            LearnerKind::paper_ocsvm(),
            cfg,
        )
    };

    let mut plain = || {
        std::hint::black_box(workload());
    };
    let mut traced_run = || {
        // Worst-case serve configuration: the iteration is a traced
        // request (root span, nested span events, flight recorder) and
        // the slowlog threshold retains every finished trace.
        let _root = tsvr_obs::tspan!("bench.session");
        std::hint::black_box(workload());
    };
    let time_one = |f: &mut dyn FnMut()| -> f64 {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_nanos() as f64
    };

    // Warm up caches, the allocator, and the tracer.
    tsvr_obs::set_enabled(true);
    tsvr_obs::trace::set_slow_threshold_ns(0);
    for _ in 0..5 {
        plain();
        traced_run();
    }
    tsvr_obs::trace::set_slow_threshold_ns(u64::MAX);

    let rounds = if fast { 31 } else { 301 };
    eprintln!("{rounds} paired rounds (off / on / traced / off each)");
    let (mut d_on, mut d_traced, mut base) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..rounds {
        tsvr_obs::set_enabled(false);
        let off1 = time_one(&mut plain);
        tsvr_obs::set_enabled(true);
        let on = time_one(&mut plain);
        tsvr_obs::trace::set_slow_threshold_ns(0);
        let traced = time_one(&mut traced_run);
        tsvr_obs::trace::set_slow_threshold_ns(u64::MAX);
        tsvr_obs::set_enabled(false);
        let off2 = time_one(&mut plain);
        tsvr_obs::set_enabled(true);
        let off = (off1 + off2) / 2.0;
        d_on.push(on - off);
        d_traced.push(traced - off);
        base.push(off);
    }
    let off = median(base);
    let on = off + median(d_on);
    let traced = off + median(d_traced);
    let overhead_pct = (on - off) / off * 100.0;
    let traced_pct = (traced - off) / off * 100.0;

    let compiled_in = cfg!(feature = "obs");
    println!(
        "probes {}: {on:.0} ns/iter on, {traced:.0} traced, {off:.0} off -> \
         {overhead_pct:+.2}% plain, {traced_pct:+.2}% traced \
         (median of {rounds} paired rounds)",
        if compiled_in { "compiled in" } else { "compiled out" },
    );
    // The acceptance number is 2%. A fast-mode smoke measures a few
    // short batches, where scheduler noise alone exceeds 2%, so it only
    // gates against gross regressions.
    let target = if fast { 25.0 } else { 2.0 };
    let pass = overhead_pct < target && traced_pct < target;
    if pass {
        println!("PASS: plain and traced overhead below the {target}% target");
    } else {
        println!("FAIL: overhead above the {target}% target");
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("obs_overhead".into())),
        (
            "workload".into(),
            Json::Str("ocsvm session, paper clip 1, top 20, 4 rounds".into()),
        ),
        ("fast_mode".into(), Json::Bool(fast)),
        ("probes_compiled_in".into(), Json::Bool(compiled_in)),
        ("rounds".into(), Json::Num(rounds as f64)),
        ("ns_per_iter_enabled".into(), Json::Num(on)),
        ("ns_per_iter_traced".into(), Json::Num(traced)),
        ("ns_per_iter_disabled".into(), Json::Num(off)),
        ("overhead_pct".into(), Json::Num(overhead_pct)),
        ("overhead_traced_pct".into(), Json::Num(traced_pct)),
        ("target_pct".into(), Json::Num(target)),
        ("pass".into(), Json::Bool(pass)),
    ]);
    let path = "BENCH_obs_overhead.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_obs_overhead.json");
    println!("wrote {path}");
}
