//! Measures the wall-clock overhead of the tsvr-obs probes on the
//! retrieval hot path and writes `BENCH_obs_overhead.json`.
//!
//! The comparison runs inside one binary: the same OC-SVM retrieval
//! session is timed with the runtime kill switch on and off
//! ([`tsvr_obs::set_enabled`]), so both measurements share code, data,
//! and compiler flags. The acceptance target is < 2% overhead; in a
//! `--no-default-features` build the probes are compiled out entirely
//! and both timings coincide.

use tsvr_bench::harness::Bencher;
use tsvr_bench::{clip1, paper_session, PAPER_SEED};
use tsvr_core::{run_session, EventQuery, LearnerKind};
use tsvr_obs::json::Json;

fn main() {
    // The paper's clip 1 at the paper's protocol: probe cost is a fixed
    // handful of atomics per round, so it must be measured against a
    // realistically sized session, not a toy one.
    eprintln!("preparing clip 1 (tunnel, 2504 frames)...");
    let clip = clip1(PAPER_SEED);
    let cfg = paper_session();
    let workload = || {
        run_session(
            &clip,
            &EventQuery::accidents(),
            LearnerKind::paper_ocsvm(),
            cfg,
        )
    };

    let mut b = Bencher::new("obs_overhead");
    tsvr_obs::set_enabled(true);
    let on = b.bench("session_probes_on", workload).ns_per_iter;
    tsvr_obs::set_enabled(false);
    let off = b.bench("session_probes_off", workload).ns_per_iter;
    tsvr_obs::set_enabled(true);

    let overhead_pct = (on - off) / off * 100.0;
    let compiled_in = cfg!(feature = "obs");
    println!(
        "probes {}: {on:.0} ns/iter on, {off:.0} ns/iter off -> {overhead_pct:+.2}% overhead",
        if compiled_in { "compiled in" } else { "compiled out" },
    );
    let target = 2.0;
    if overhead_pct < target {
        println!("PASS: overhead below the {target}% target");
    } else {
        println!("FAIL: overhead above the {target}% target");
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("obs_overhead".into())),
        (
            "workload".into(),
            Json::Str("ocsvm session, paper clip 1, top 20, 4 rounds".into()),
        ),
        ("probes_compiled_in".into(), Json::Bool(compiled_in)),
        ("ns_per_iter_enabled".into(), Json::Num(on)),
        ("ns_per_iter_disabled".into(), Json::Num(off)),
        ("overhead_pct".into(), Json::Num(overhead_pct)),
        ("target_pct".into(), Json::Num(target)),
        ("pass".into(), Json::Bool(overhead_pct < target)),
    ]);
    let path = "BENCH_obs_overhead.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_obs_overhead.json");
    println!("wrote {path}");
}
