//! Regenerates **Figure 2**: least-squares polynomial curve fitting of a
//! tracked vehicle trajectory (paper §3.2, Eq. 1–2).
//!
//! The paper shows a 4th-degree polynomial fit through a tracked
//! vehicle's centroids, with the first derivative giving the velocity
//! tangent. This binary takes a real tracked trajectory out of the
//! clip-1 pipeline, fits it, and prints centroids vs. fitted curve plus
//! the tangent speeds.

use tsvr_bench::{clip1, PAPER_SEED};
use tsvr_core::EventQuery;
use tsvr_trajectory::model::TrajectoryModel;

fn main() {
    let clip = clip1(PAPER_SEED);

    // Pick the vehicle involved in the first accident (an interesting
    // trajectory), falling back to the longest track.
    let accident_frame = clip
        .sim
        .incidents
        .iter()
        .find(|r| EventQuery::accidents().matches(r.kind))
        .map(|r| r.start_frame)
        .unwrap_or(0);
    let track = clip
        .vision
        .tracks
        .iter()
        .filter(|t| t.start_frame() <= accident_frame && accident_frame <= t.end_frame())
        .max_by_key(|t| t.points.len())
        .or_else(|| clip.vision.tracks.iter().max_by_key(|t| t.points.len()))
        .expect("clip has tracks");

    println!("Figure 2 — polynomial trajectory fit (track {})", track.id);
    println!("================================================");
    println!(
        "track spans frames {}..={} ({} centroids)",
        track.start_frame(),
        track.end_frame(),
        track.points.len()
    );

    for degree in [1usize, 2, 4] {
        let m = TrajectoryModel::fit(track, degree).expect("fit");
        println!(
            "degree {}: rms residual {:.3} px (x-coeffs: {:?})",
            m.degree,
            m.rms_residual,
            m.x.coeffs()
                .iter()
                .map(|c| (c * 1e4).round() / 1e4)
                .collect::<Vec<_>>()
        );
    }

    let m = TrajectoryModel::fit(track, 4).expect("fit");
    println!("\nframe   centroid(x,y)      fitted(x,y)        tangent speed");
    let step = (track.points.len() / 15).max(1);
    for p in track.points.iter().step_by(step) {
        let f = p.frame as f64;
        let fit = m.position(f);
        println!(
            "{:>5}   ({:>6.1},{:>6.1})   ({:>6.1},{:>6.1})   {:>6.2} px/frame",
            p.frame,
            p.centroid.x,
            p.centroid.y,
            fit.x,
            fit.y,
            m.speed(f)
        );
    }
    println!(
        "\n(4th-degree fit as in the paper's Fig. 2; residual {:.2} px reflects\nsegmentation jitter smoothed by the curve)",
        m.rms_residual
    );
}
