//! Measures the sharded viddb path and writes `BENCH_shard.json`.
//!
//! Three things are measured, matching the sharding acceptance bar:
//!
//! 1. **Scatter-gather speedup** — the same multi-shard top-k query
//!    (per-shard local top-k on `tsvr-par`, sequential merge) timed
//!    with the pool pinned to 1 thread and to
//!    `max(4, available_parallelism)` threads.
//! 2. **Byte-identity** — before timing, the rankings from the sharded
//!    path at both thread counts and from the flat single-shard path
//!    are compared element-wise; any divergence aborts the bench. The
//!    JSON carries the verdict so the determinism claim is recorded,
//!    not just asserted in tests.
//! 3. **Index compression ratio** — the same index segments encoded
//!    with the uncompressed tag-5 codec and the delta/bit-packed tag-6
//!    codec, plus a decode round-trip check (bit-exact by `==` on the
//!    decoded segment).
//!
//! A small end-to-end section also ingests the clips into an actual
//! on-disk [`ShardedDb`] to report the shard fan-out and per-shard log
//! bytes, so the JSON reflects the storage layout and not only the
//! in-memory query path.
//!
//! `TSVR_BENCH_FAST=1` shrinks the dataset and switches the harness to
//! single-batch smoke mode (used by `scripts/ci.sh`).

use tsvr_bench::harness::Bencher;
use tsvr_core::{heuristic_topk, sharded_heuristic_topk, ClipWindows, ShardWindows};
use tsvr_mil::{Bag, Instance};
use tsvr_obs::json::Json;
use tsvr_viddb::codec::Writer;
use tsvr_viddb::record::{ClipBundle, ClipMeta, IndexSegment, IndexWindowRow, TrackRow};
use tsvr_viddb::ShardedDb;

/// Deterministic xorshift64* stream so the dataset is identical on
/// every run and every host.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn unit(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
}

const FEATURE_DIM: usize = 6;
const POINTS_PER_INSTANCE: usize = 5;

/// Synthesizes one clip's windows: `bags` bags of trajectory-sequence
/// instances with smoothly varying features (realistic for the
/// delta/bit-packing codec, unlike white noise).
fn clip_windows(clip_id: u64, bags: usize, rng: &mut u64) -> ClipWindows {
    let bags = (0..bags)
        .map(|b| {
            let instances = (0..2)
                .map(|i| {
                    let base: Vec<f64> = (0..FEATURE_DIM).map(|_| unit(rng)).collect();
                    let points = (0..POINTS_PER_INSTANCE)
                        .map(|p| {
                            base.iter()
                                .map(|v| v + 0.01 * p as f64 + 0.001 * unit(rng))
                                .collect()
                        })
                        .collect();
                    Instance::new(clip_id * 1000 + i, points)
                })
                .collect();
            Bag::new(b, instances)
        })
        .collect();
    ClipWindows { clip_id, bags }
}

/// An index segment carrying the same kind of flat raw-α feature rows
/// the retrieval pipeline stores, for the codec-size comparison.
fn index_segment(clip_id: u64, windows: usize, tracks: usize, rng: &mut u64) -> IndexSegment {
    let rows = (0..windows)
        .map(|w| {
            let mut features = Vec::with_capacity(tracks * FEATURE_DIM);
            let mut v = unit(rng);
            for _ in 0..tracks * FEATURE_DIM {
                // Smooth walk on a 2^-12 grid: consecutive values are
                // close and share low-order zero bits, the shape the
                // XOR-delta/bit-packing codec exploits (full-mantissa
                // white noise is its worst case and falls back to raw).
                v += 0.05 * (unit(rng) - 0.5);
                features.push((v * 4096.0).round() / 4096.0);
            }
            IndexWindowRow {
                window_index: w as u32,
                start_checkpoint: (w * 10) as u64,
                start_frame: (w * 15) as u64,
                end_frame: (w * 15 + 14) as u64,
                track_ids: (0..tracks as u64).map(|t| clip_id * 100 + t).collect(),
                features,
            }
        })
        .collect();
    IndexSegment {
        clip_id,
        config_hash: 0xbe7c,
        feature_dim: FEATURE_DIM as u32,
        windows: rows,
    }
}

fn bundle(clip_id: u64, camera: &str, start_time: u64) -> ClipBundle {
    ClipBundle {
        meta: ClipMeta {
            clip_id,
            name: format!("clip-{clip_id}"),
            location: "bench".into(),
            camera: camera.into(),
            start_time,
            frame_count: 100,
            width: 320,
            height: 240,
        },
        tracks: vec![TrackRow {
            track_id: clip_id * 100,
            start_frame: 0,
            centroids: vec![(1.0, 2.0), (3.0, 4.0)],
        }],
        windows: vec![],
        incidents: vec![],
    }
}

fn rankings_equal(
    a: &[tsvr_core::RankedWindow],
    b: &[tsvr_core::RankedWindow],
) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.clip_id == y.clip_id
                && x.window_index == y.window_index
                && x.score.to_bits() == y.score.to_bits()
        })
}

fn main() {
    let fast = std::env::var_os("TSVR_BENCH_FAST").is_some_and(|v| v != "0");
    let (cameras, buckets, clips_per_cell, bags_per_clip) =
        if fast { (2, 2, 1, 24) } else { (4, 4, 2, 96) };
    let k = 20;
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let many = available.max(4);

    // ---- dataset -------------------------------------------------------
    let mut rng = 0x5eed_2007_u64;
    let mut shards: Vec<ShardWindows> = Vec::new();
    let mut clip_id = 1u64;
    for c in 0..cameras {
        for b in 0..buckets {
            let clips = (0..clips_per_cell)
                .map(|_| {
                    let cw = clip_windows(clip_id, bags_per_clip, &mut rng);
                    clip_id += 1;
                    cw
                })
                .collect();
            shards.push(ShardWindows {
                shard: format!("cam-{c:02}/bucket-{b}"),
                clips,
            });
        }
    }
    let flat: Vec<ClipWindows> = shards.iter().flat_map(|s| s.clips.clone()).collect();
    let total_clips = flat.len();
    let total_bags: usize = flat.iter().map(|c| c.bags.len()).sum();
    eprintln!(
        "dataset: {} shards, {total_clips} clips, {total_bags} bags; \
         comparing 1 thread vs {many} threads (host parallelism {available})",
        shards.len()
    );

    // ---- byte-identity (the determinism acceptance bar) ----------------
    let single = heuristic_topk(&flat, k);
    tsvr_par::set_threads(1);
    let ranked_1 = sharded_heuristic_topk(&shards, k);
    tsvr_par::set_threads(many);
    let ranked_n = sharded_heuristic_topk(&shards, k);
    let byte_identical =
        rankings_equal(&single, &ranked_1) && rankings_equal(&ranked_1, &ranked_n);
    assert!(
        byte_identical,
        "sharded scatter-gather rankings diverged from the single-shard path"
    );

    // ---- scatter-gather timing -----------------------------------------
    let mut b = Bencher::new("shard");
    tsvr_par::set_threads(1);
    let q1 = b
        .bench("sharded_topk/threads_1", || sharded_heuristic_topk(&shards, k))
        .ns_per_iter;
    tsvr_par::set_threads(many);
    let qn = b
        .bench("sharded_topk/threads_n", || sharded_heuristic_topk(&shards, k))
        .ns_per_iter;
    tsvr_par::set_threads(0); // restore env/auto selection
    let speedup = q1 / qn;
    println!("sharded top-{k}: {speedup:.2}x with {many} threads over {} shards", shards.len());

    // ---- compression ratio ---------------------------------------------
    let (mut raw_bytes, mut packed_bytes) = (0usize, 0usize);
    let mut round_trips = true;
    let seg_windows = if fast { 8 } else { 32 };
    for id in 1..=total_clips as u64 {
        let seg = index_segment(id, seg_windows, 3, &mut rng);
        let mut w = Writer::new();
        seg.encode(&mut w).expect("encode");
        raw_bytes += w.into_bytes().len();
        let mut w = Writer::new();
        seg.encode_compressed(&mut w).expect("encode_compressed");
        let bytes = w.into_bytes();
        packed_bytes += bytes.len();
        let mut r = tsvr_viddb::codec::Reader::new(&bytes);
        round_trips &= IndexSegment::decode_compressed(&mut r).expect("decode") == seg;
    }
    assert!(round_trips, "compressed index round trip diverged");
    let ratio = raw_bytes as f64 / packed_bytes as f64;
    println!(
        "index codec: {raw_bytes} B raw vs {packed_bytes} B compressed ({ratio:.2}x, bit-exact)"
    );

    // ---- on-disk layout -------------------------------------------------
    let dir = std::env::temp_dir().join(format!("tsvr-bench-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = ShardedDb::open(&dir).expect("open sharded db");
    let bucket = db.bucket_secs();
    for (i, shard) in shards.iter().enumerate() {
        let cam = format!("cam-{:02}", i / buckets);
        for clip in &shard.clips {
            db.put_clip(&bundle(clip.clip_id, &cam, (i % buckets) as u64 * bucket))
                .expect("put_clip");
            db.put_index(&index_segment(clip.clip_id, seg_windows, 3, &mut rng))
                .expect("put_index");
        }
    }
    db.sync().expect("sync");
    let shard_count = db.shard_count();
    let log_bytes = db.log_size();
    println!("on-disk: {shard_count} shard logs, {log_bytes} B total");
    let _ = std::fs::remove_dir_all(&dir);

    // Starved hosts can't speed up; the determinism invariant makes the
    // 1-thread and n-thread runs the same computation, so parity is the
    // floor there. Fast mode is a correctness smoke: its single-batch
    // timings are too noisy to gate on, so only byte-identity and the
    // codec round trip decide the verdict (timings stay informational).
    let (target, pass_rule) = if fast {
        (0.0, "smoke")
    } else if available >= 4 {
        (1.5, "speedup")
    } else {
        (0.85, "parity")
    };
    let pass = speedup >= target && byte_identical && ratio > 1.0;
    let note = format!(
        "{} ({pass_rule}): sharded top-k {speedup:.2}x (target {target}x) on {available} \
         hardware thread(s); rankings byte-identical at 1/{many} threads and vs flat path; \
         compression {ratio:.2}x bit-exact",
        if pass { "PASS" } else { "FAIL" }
    );
    println!("{note}");

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("shard".into())),
        (
            "workload".into(),
            Json::Str(format!(
                "top-{k} over {} shards / {total_clips} clips / {total_bags} bags",
                shards.len()
            )),
        ),
        ("fast_mode".into(), Json::Bool(fast)),
        ("available_parallelism".into(), Json::Num(available as f64)),
        ("threads_compared".into(), Json::Num(many as f64)),
        ("query_ns_threads_1".into(), Json::Num(q1)),
        ("query_ns_threads_n".into(), Json::Num(qn)),
        ("query_speedup".into(), Json::Num(speedup)),
        ("rankings_byte_identical".into(), Json::Bool(byte_identical)),
        ("index_raw_bytes".into(), Json::Num(raw_bytes as f64)),
        ("index_compressed_bytes".into(), Json::Num(packed_bytes as f64)),
        ("compression_ratio".into(), Json::Num(ratio)),
        ("compression_bit_exact".into(), Json::Bool(round_trips)),
        ("shard_files".into(), Json::Num(shard_count as f64)),
        ("shard_log_bytes".into(), Json::Num(log_bytes as f64)),
        ("target_speedup".into(), Json::Num(target)),
        ("pass_rule".into(), Json::Str(pass_rule.into())),
        ("pass".into(), Json::Bool(pass)),
        ("note".into(), Json::Str(note)),
    ]);
    let path = "BENCH_shard.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_shard.json");
    println!("wrote {path}");
}
