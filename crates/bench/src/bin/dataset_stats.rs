//! Regenerates the §6.2 dataset statistics (paper prose):
//! clip 1 — tunnel, 2504 frames, 109 TSs; clip 2 — intersection,
//! 592 frames, 168 TSs; sampling 5 frames/checkpoint, window size 3.

use tsvr_bench::{clip1, clip2, clip_stats, PAPER_SEED};

fn main() {
    println!("Dataset statistics (paper §6.2)");
    println!("===============================");
    println!("sampling rate: 5 frames/checkpoint, window size: 3 (15 frames/VS)\n");
    println!(
        "{:<14}{:>8}{:>8}{:>10}{:>8}{:>10}{:>12}",
        "clip", "frames", "tracks", "windows", "TSs", "relevant", "paper TSs"
    );
    for (name, clip, paper_ts) in [
        ("clip1-tunnel", clip1(PAPER_SEED), 109),
        ("clip2-xing", clip2(PAPER_SEED), 168),
    ] {
        let s = clip_stats(&clip);
        println!(
            "{:<14}{:>8}{:>8}{:>10}{:>8}{:>10}{:>12}",
            name, s.frames, s.tracks, s.windows, s.sequences, s.relevant, paper_ts
        );
    }
    println!("\n(per-window decomposition of clip 1, first 10 windows)");
    let clip = clip1(PAPER_SEED);
    for w in clip.dataset.windows.iter().take(10) {
        println!(
            "  window {:>3}: frames {:>4}..={:<4} TSs: {}",
            w.index,
            w.start_frame,
            w.end_frame,
            w.sequences.len()
        );
    }
}
