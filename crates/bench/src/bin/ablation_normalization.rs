//! **Ablation A1** — weight normalization in the weighted-RF baseline.
//!
//! The paper (§6.2) compares three schemes for normalizing the
//! inverse-σ feature weights — none, linear min–max, and
//! percentage-of-total — and reports that "the latter \[percentage\]
//! outperforms both the linear normalization and no normalization at
//! all". This ablation reruns the accident sessions under all three.

use tsvr_bench::{clip1, clip2, print_accuracy_table, run_accident_session, PAPER_SEED};
use tsvr_core::LearnerKind;
use tsvr_mil::Normalization;

fn main() {
    for (name, clip) in [
        ("clip 1 (tunnel)", clip1(PAPER_SEED)),
        ("clip 2 (intersection)", clip2(PAPER_SEED)),
    ] {
        let raw = run_accident_session(&clip, LearnerKind::WeightedRf(Normalization::None));
        let linear = run_accident_session(&clip, LearnerKind::WeightedRf(Normalization::Linear));
        let pct = run_accident_session(&clip, LearnerKind::WeightedRf(Normalization::Percentage));
        print_accuracy_table(
            &format!("Ablation A1 — weight normalization, {name}"),
            &[&pct, &linear, &raw],
        );
    }
    println!("\npaper finding: percentage normalization beats linear (which can zero out a\nfeature entirely) and raw 1/sigma weights (which bias the score).");
}
