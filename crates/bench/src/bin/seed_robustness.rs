//! Robustness check: the Fig. 8/9 shapes must hold across simulation
//! seeds, not just at the calibrated `PAPER_SEED`. Runs both clips over
//! several seeds and reports the per-round mean accuracy (and the
//! MIL-vs-baseline verdict per seed).

use tsvr_bench::{clip1, clip2, run_accident_session};
use tsvr_core::LearnerKind;

fn main() {
    let seeds = [2007u64, 101, 202, 303, 404];
    for (name, make) in [
        ("clip 1 (tunnel)", clip1 as fn(u64) -> _),
        ("clip 2 (intersection)", clip2 as fn(u64) -> _),
    ] {
        println!("\n{name} over seeds {seeds:?}");
        println!(
            "{:>6} {:>28} {:>28} {:>10}",
            "seed", "MIL rounds 0..4", "WRF rounds 0..4", "MIL wins?"
        );
        let mut mil_sum = [0.0f64; 5];
        let mut wrf_sum = [0.0f64; 5];
        let mut wins = 0;
        for &seed in &seeds {
            let clip = make(seed);
            let mil = run_accident_session(&clip, LearnerKind::paper_ocsvm());
            let wrf = run_accident_session(&clip, LearnerKind::paper_weighted_rf());
            let fmt = |r: &tsvr_mil::SessionReport| {
                r.accuracies
                    .iter()
                    .map(|a| format!("{:>3.0}", a * 100.0))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let mil_final = *mil.accuracies.last().unwrap();
            let wrf_final = *wrf.accuracies.last().unwrap();
            let win = mil_final >= wrf_final;
            if win {
                wins += 1;
            }
            for (i, a) in mil.accuracies.iter().enumerate() {
                mil_sum[i] += a;
            }
            for (i, a) in wrf.accuracies.iter().enumerate() {
                wrf_sum[i] += a;
            }
            println!(
                "{:>6} {:>28} {:>28} {:>10}",
                seed,
                fmt(&mil),
                fmt(&wrf),
                if win { "yes" } else { "NO" }
            );
        }
        let n = seeds.len() as f64;
        println!(
            "{:>6} {:>28} {:>28} {:>7}/{}",
            "mean",
            mil_sum
                .iter()
                .map(|s| format!("{:>3.0}", s / n * 100.0))
                .collect::<Vec<_>>()
                .join(" "),
            wrf_sum
                .iter()
                .map(|s| format!("{:>3.0}", s / n * 100.0))
                .collect::<Vec<_>>()
                .join(" "),
            wins,
            seeds.len()
        );
    }
    println!("\nshape claim: MIL final >= weighted-RF final on every seed, and the mean\nMIL curve is non-decreasing across rounds.");
}
