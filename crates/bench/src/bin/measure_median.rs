//! Calibration helper: median pairwise squared distance over all TS
//! feature vectors, per clip (candidate unsupervised gamma source).
use tsvr_bench::{clip1, clip2, PAPER_SEED};

fn main() {
    for (name, clip) in [("clip1", clip1(PAPER_SEED)), ("clip2", clip2(PAPER_SEED))] {
        let vecs: Vec<Vec<f64>> = clip
            .bags
            .iter()
            .flat_map(|b| b.instances.iter().map(|i| i.concat()))
            .collect();
        let mut d = Vec::new();
        for i in 0..vecs.len() {
            for j in (i + 1)..vecs.len() {
                d.push(tsvr_linalg::vecops::sq_dist(&vecs[i], &vecs[j]));
            }
        }
        d.sort_by(|a, b| a.total_cmp(b));
        let q = |p: f64| d[(p * (d.len() - 1) as f64) as usize];
        println!(
            "{name}: n={} median={:.4} p25={:.4} p75={:.4} p90={:.4} gamma(ln2/median)={:.2}",
            vecs.len(),
            q(0.5),
            q(0.25),
            q(0.75),
            q(0.9),
            (2.0f64).ln() / q(0.5)
        );
    }
}
