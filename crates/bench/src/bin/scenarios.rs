//! Retrieval-quality harness over the scenario fleet; writes
//! `BENCH_scenarios.json`.
//!
//! Rows are the fleet members ([`tsvr_sim::fleet`]) plus the two paper
//! presets; columns are retrieval methods (the event heuristic and MIL
//! learners at one and at four feedback rounds). Every cell runs the
//! *real* pipeline: `World::run` → vision → feature extraction → ingest
//! into an on-disk [`ShardedDb`] → reload through the stored feature
//! index → rank — nothing is scored from in-memory shortcuts. Scores
//! are precision@20 and average precision against the ground-truth
//! oracle, and each cell passes/fails a per-scenario AP floor, so a
//! retrieval-quality regression on any fleet member turns the harness
//! (and `scripts/ci.sh`, which greps the verdict) red.
//!
//! Two adversarial dimensions ride on top of the clean matrix:
//!
//! 1. **Label noise** — the paper-method cell of every scenario re-runs
//!    with a [`NoisyOracle`] flipping feedback labels at 15%, 35% and
//!    100%. Moderate noise must degrade *gracefully* (bounded AP loss
//!    against the clean cell); all-noise must merely complete — it
//!    bounds crash behavior, not quality.
//! 2. **Shard quarantine** — the two-camera handoff member's database
//!    has one shard destroyed on disk; the reopened database must
//!    quarantine exactly that shard and keep serving the surviving
//!    camera, byte-identically to ranking the healthy clip alone.
//!
//! The handoff member is also the scatter-gather witness: its two
//! cameras land in two shards (asserted), and with probes compiled in
//! the `query.scatter.shards` counter must advance by the shard count.
//!
//! `TSVR_SCENARIO_FAST=1` (or `TSVR_BENCH_FAST=1`) shrinks the matrix —
//! shorter clips, heuristic + paper learner only, one feedback round,
//! fewer noise levels — for the CI smoke run.

use std::collections::HashMap;

use tsvr_core::{
    bags_from_dataset, bundle_from_clip, dataset_from_segment, heuristic_topk,
    labels_from_bundle, prepare_sim, segment_from_dataset, sharded_heuristic_topk, ClipArtifacts,
    ClipWindows, EventQuery, LearnerKind, MultiClipIndex, PipelineOptions, RankedWindow,
    ShardWindows,
};
use tsvr_mil::metrics::{accuracy_ceiling, average_precision, precision_at};
use tsvr_mil::oracle::NoisyOracle;
use tsvr_mil::{GroundTruthOracle, Oracle, RetrievalSession, SessionConfig};
use tsvr_obs::json::Json;
use tsvr_sim::{fleet, Scenario, World};
use tsvr_viddb::{ClipMeta, ShardedDb};

/// The headline experiment seed (matches `tsvr_bench::PAPER_SEED`).
const SEED: u64 = 2007;
/// The paper's result-page size.
const TOP_N: usize = 20;

/// One row of the matrix: a named scenario wired to its oracle query.
struct Row {
    name: &'static str,
    /// Query name (`EventQuery::from_name` spelling).
    query: &'static str,
    cameras: u32,
}

/// Per-scenario AP floors: `(heuristic, learner@1 round, learner@final
/// round, paper learner under moderate label noise)`. Pinned at ~50% of
/// the weakest observed cell across the full matrix and the fast smoke
/// at seed 2007 — the pipeline is deterministic per seed, so the margin
/// absorbs deliberate parameter changes in future revisions, and a cell
/// below its floor means a real retrieval-quality regression, not
/// noise.
fn floors(name: &str) -> (f64, f64, f64, f64) {
    match name {
        // The two risk grades behave very differently: brake-resolved
        // conflicts pollute the clip with near-signature distractor
        // braking (low AP everywhere), while the swerve's lateral
        // excursion is nearly unique in feature space (AP ≈ 1 clean,
        // but only 3 relevant windows, so 35% label noise drowns the
        // signal — its noise floor is the weakest in the fleet).
        "near_miss_brake" => (0.13, 0.10, 0.10, 0.20),
        "near_miss_swerve" => (0.45, 0.35, 0.35, 0.03),
        "occlusion_merge" => (0.25, 0.25, 0.25, 0.25),
        // Diverse Density struggles on the platoon scenes (many
        // near-identical quiet bags), which sets the low learner floor.
        "shockwave" => (0.30, 0.13, 0.13, 0.20),
        "wrong_way" => (0.28, 0.22, 0.22, 0.26),
        "pedestrian" => (0.19, 0.19, 0.19, 0.18),
        // The split halves leave DD very few relevant windows per
        // camera; the one-class learner is unaffected (AP ≈ 0.9).
        "handoff" => (0.16, 0.08, 0.08, 0.20),
        // The paper presets are the well-understood baseline rows.
        "tunnel_accidents" => (0.35, 0.30, 0.30, 0.12),
        "intersection_accidents" => (0.26, 0.15, 0.15, 0.19),
        _ => (0.0, 0.0, 0.0, 0.0),
    }
}

/// Everything one scenario contributes to the matrix, reloaded through
/// the sharded database's stored feature index.
struct PreparedRow {
    name: &'static str,
    cameras: u32,
    /// Unified index-served bags + ground-truth labels + origins.
    index: MultiClipIndex,
    /// `(clip_id, window_index)` → unified bag id.
    origin_of: HashMap<(u64, u64), usize>,
    /// Per-shard windows for the scatter-gather path.
    shards: Vec<ShardWindows>,
    /// Shard files backing the row's database.
    shard_count: usize,
    /// Index-served bags bit-identical to the cold extraction.
    index_served_identical: bool,
    /// Scratch directory holding the row's `ShardedDb` (kept open-able
    /// for the quarantine dimension, removed at the end).
    dir: std::path::PathBuf,
    /// Shard file of the last clip (the quarantine victim).
    last_shard: String,
}

fn meta_for(clip_id: u64, camera: usize, clip: &ClipArtifacts, name: &str) -> ClipMeta {
    ClipMeta {
        clip_id,
        name: format!("{name} cam-{camera}"),
        location: name.to_string(),
        camera: format!("cam-{camera}"),
        start_time: 0,
        frame_count: clip.sim.frames.len() as u32,
        width: clip.sim.width,
        height: clip.sim.height,
    }
}

/// Builds a row's scenario; `None` for unknown names.
fn scenario_for(row: &Row, fast: bool) -> Option<(Scenario, EventQuery)> {
    let query = EventQuery::from_name(row.query).ok()?;
    let scenario = match row.name {
        "tunnel_accidents" => Scenario::tunnel_small(SEED),
        "intersection_accidents" => Scenario::intersection_paper(SEED),
        name => {
            let mut s = fleet::scenario(name, SEED)?;
            if fast {
                // Shorter clips for the smoke run: the first target
                // incident (and early distractors) survive the cut.
                s.total_frames = s.total_frames.min(340);
            }
            s
        }
    };
    Some((scenario, query))
}

/// Runs the full ingest → index-served reload for one scenario.
fn prepare_row(row: &Row, fast: bool) -> PreparedRow {
    let (scenario, query) = scenario_for(row, fast).expect("known row");
    let opts = PipelineOptions::default();
    let sim = World::run(scenario.clone());

    // Multi-camera members split the recording at the camera boundary
    // (through the middle of the target incident); each half becomes
    // its own clip with its own camera, which routes it to its own
    // shard.
    let clips: Vec<ClipArtifacts> = if row.cameras == 2 {
        let target = fleet::member(row.name).expect("fleet member").target;
        let cut = fleet::handoff_split_frame(&sim, target);
        let (a, b) = sim.split_at(cut);
        vec![
            prepare_sim(a, scenario.kind, &opts),
            prepare_sim(b, scenario.kind, &opts),
        ]
    } else {
        vec![prepare_sim(sim, scenario.kind, &opts)]
    };

    let dir = std::env::temp_dir().join(format!(
        "tsvr-bench-scenarios-{}-{}",
        std::process::id(),
        row.name
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = ShardedDb::open(&dir).expect("open sharded db");
    for (i, clip) in clips.iter().enumerate() {
        let clip_id = i as u64 + 1;
        db.put_clip(&bundle_from_clip(clip, meta_for(clip_id, i, clip, row.name)))
            .expect("put_clip");
        db.put_index(&segment_from_dataset(clip_id, &clip.dataset))
            .expect("put_index");
    }
    db.sync().expect("sync");

    // Reload every clip through its stored feature index — the served
    // path — and check it reproduces the cold extraction bit for bit.
    let mut parts = Vec::new();
    let mut by_shard: Vec<(String, ClipWindows)> = Vec::new();
    let mut index_served_identical = true;
    for (i, clip) in clips.iter().enumerate() {
        let clip_id = i as u64 + 1;
        let segment = db
            .load_index(clip_id)
            .expect("load_index")
            .expect("index stored");
        let dataset = dataset_from_segment(&segment, clip.dataset.config);
        let bags = bags_from_dataset(&dataset);
        index_served_identical &= bags == clip.bags;
        let bundle = db.load_clip(clip_id).expect("load_clip");
        let labels = labels_from_bundle(&bundle, &query);
        let shard = db
            .shard_of_clip(clip_id)
            .expect("clip routed")
            .to_string();
        by_shard.push((shard, ClipWindows { clip_id, bags: bags.clone() }));
        parts.push((clip_id, bags, labels));
    }
    let last_shard = by_shard.last().expect("at least one clip").0.clone();

    // Group clips into their actual shards, in shard order.
    let mut shards: Vec<ShardWindows> = Vec::new();
    by_shard.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.clip_id.cmp(&b.1.clip_id)));
    for (shard, cw) in by_shard {
        match shards.last_mut() {
            Some(s) if s.shard == shard => s.clips.push(cw),
            _ => shards.push(ShardWindows { shard, clips: vec![cw] }),
        }
    }

    let index = MultiClipIndex::from_parts(parts);
    let origin_of = index
        .origin
        .iter()
        .enumerate()
        .map(|(bag, &key)| (key, bag))
        .collect();
    PreparedRow {
        name: row.name,
        cameras: row.cameras,
        index,
        origin_of,
        shards,
        shard_count: db.shard_count(),
        index_served_identical,
        dir,
        last_shard,
    }
}

/// Maps a ranked-window list back to unified bag ids.
fn ranking_of(ranked: &[RankedWindow], row: &PreparedRow) -> Vec<usize> {
    ranked
        .iter()
        .map(|r| row.origin_of[&(r.clip_id, r.window_index)])
        .collect()
}

/// One scored cell of the matrix.
struct Cell {
    scenario: &'static str,
    method: String,
    rounds: usize,
    noise: f64,
    precision_20: f64,
    ap: f64,
    floor_ap: f64,
    pass: bool,
}

impl Cell {
    fn json(&self) -> Json {
        Json::Obj(vec![
            ("scenario".into(), Json::Str(self.scenario.into())),
            ("method".into(), Json::Str(self.method.clone())),
            ("rounds".into(), Json::Num(self.rounds as f64)),
            ("noise".into(), Json::Num(self.noise)),
            ("precision_at_20".into(), Json::Num(self.precision_20)),
            ("average_precision".into(), Json::Num(self.ap)),
            ("floor_ap".into(), Json::Num(self.floor_ap)),
            ("cell_pass".into(), Json::Bool(self.pass)),
        ])
    }
}

fn score(ranking: &[usize], labels: &[bool]) -> (f64, f64) {
    (
        precision_at(ranking, labels, TOP_N),
        average_precision(ranking, labels),
    )
}

/// Runs one feedback session over a row's unified bags and scores the
/// final ranking against the *true* labels (the oracle may be noisy;
/// quality is always judged against ground truth).
fn session_cell(
    row: &PreparedRow,
    learner: LearnerKind,
    rounds: usize,
    oracle: &dyn Oracle,
) -> (f64, f64) {
    struct Dyn<'a>(&'a dyn Oracle);
    impl Oracle for Dyn<'_> {
        fn label(&self, bag_id: usize) -> bool {
            self.0.label(bag_id)
        }
        fn relevant_count(&self) -> usize {
            self.0.relevant_count()
        }
    }
    let cfg = SessionConfig {
        top_n: TOP_N,
        feedback_rounds: rounds,
        ..SessionConfig::default()
    };
    let (report, _) = RetrievalSession::new(
        &row.index.bags,
        learner.build_for(&row.index.bags),
        &Dyn(oracle),
        cfg,
    )
    .run();
    score(report.rankings.last().expect("rounds >= 0"), &row.index.labels)
}

fn main() {
    let fast = ["TSVR_SCENARIO_FAST", "TSVR_BENCH_FAST"]
        .iter()
        .any(|v| std::env::var_os(v).is_some_and(|v| v != "0"));

    let mut rows: Vec<Row> = fleet::members()
        .iter()
        .map(|m| Row { name: m.name, query: m.target.name(), cameras: m.cameras })
        .collect();
    rows.push(Row { name: "tunnel_accidents", query: "accident", cameras: 1 });
    if !fast {
        rows.push(Row { name: "intersection_accidents", query: "accident", cameras: 1 });
    }

    let learners: Vec<(&str, LearnerKind)> = if fast {
        vec![("ocsvm", LearnerKind::paper_ocsvm())]
    } else {
        vec![
            ("ocsvm", LearnerKind::paper_ocsvm()),
            ("dd", LearnerKind::DiverseDensity { scale: 8.0 }),
        ]
    };
    let rounds_list: Vec<usize> = if fast { vec![1] } else { vec![1, 4] };
    let noise_levels: Vec<f64> = if fast { vec![0.35, 1.0] } else { vec![0.15, 0.35, 1.0] };
    let max_rounds = *rounds_list.last().expect("non-empty");

    let mut cells: Vec<Cell> = Vec::new();
    let mut all_identical = true;
    let mut handoff_scatter_ok = true;
    let mut quarantine = Vec::new();

    for row_spec in &rows {
        let row = prepare_row(row_spec, fast);
        all_identical &= row.index_served_identical;
        let relevant = row.index.labels.iter().filter(|&&l| l).count();
        let ceiling = accuracy_ceiling(&row.index.labels, TOP_N);
        eprintln!(
            "{}: {} windows ({} relevant, p@20 ceiling {:.2}) across {} shard(s)",
            row.name,
            row.index.len(),
            relevant,
            ceiling,
            row.shard_count
        );
        assert!(relevant > 0, "{}: oracle marks nothing relevant", row.name);
        let (floor_heu, floor_r1, floor_rn, floor_noise) = floors(row.name);

        // --- heuristic cell: the scatter-gather query path ------------
        let k = row.index.len();
        if row.cameras == 2 {
            assert_eq!(
                row.shard_count, 2,
                "{}: two cameras must land in two shards",
                row.name
            );
            let before = tsvr_obs::counter!("query.scatter.shards").get();
            let ranked = sharded_heuristic_topk(&row.shards, k);
            if tsvr_obs::is_enabled() {
                let delta = tsvr_obs::counter!("query.scatter.shards").get() - before;
                handoff_scatter_ok &= delta == row.shards.len() as u64;
            }
            // Byte-identity of the scatter-gather vs the flat path.
            let flat: Vec<ClipWindows> = row
                .shards
                .iter()
                .flat_map(|s| s.clips.clone())
                .collect();
            let flat_ranked = heuristic_topk(&flat, k);
            handoff_scatter_ok &= ranked.len() == flat_ranked.len()
                && ranked.iter().zip(&flat_ranked).all(|(a, b)| {
                    a.score.to_bits() == b.score.to_bits()
                        && (a.clip_id, a.window_index) == (b.clip_id, b.window_index)
                });
        }
        let ranked = sharded_heuristic_topk(&row.shards, k);
        let (p20, ap) = score(&ranking_of(&ranked, &row), &row.index.labels);
        cells.push(Cell {
            scenario: row.name,
            method: "heuristic".into(),
            rounds: 0,
            noise: 0.0,
            precision_20: p20,
            ap,
            floor_ap: floor_heu,
            pass: ap >= floor_heu,
        });

        // --- learner cells --------------------------------------------
        let truth = GroundTruthOracle::new(row.index.labels.clone());
        for &(lname, kind) in &learners {
            for &rounds in &rounds_list {
                let (p20, ap) = session_cell(&row, kind, rounds, &truth);
                let floor = if rounds == max_rounds { floor_rn } else { floor_r1 };
                cells.push(Cell {
                    scenario: row.name,
                    method: lname.into(),
                    rounds,
                    noise: 0.0,
                    precision_20: p20,
                    ap,
                    floor_ap: floor,
                    pass: ap >= floor,
                });
            }
        }

        // --- adversarial: label noise on the paper method -------------
        for &p in &noise_levels {
            let noisy = NoisyOracle::new(truth.clone(), p, SEED);
            let (p20, ap) = session_cell(&row, LearnerKind::paper_ocsvm(), max_rounds, &noisy);
            // Moderate noise must stay above the graceful-degradation
            // floor; all-noise (p = 1.0) only has to complete — a
            // fully adversarial user bounds robustness, not quality.
            let floor = if p < 1.0 { floor_noise } else { 0.0 };
            cells.push(Cell {
                scenario: row.name,
                method: "ocsvm".into(),
                rounds: max_rounds,
                noise: p,
                precision_20: p20,
                ap,
                floor_ap: floor,
                pass: ap >= floor,
            });
        }

        // --- adversarial: shard quarantine (two-camera rows) ----------
        if row.cameras == 2 {
            // Destroy the second camera's shard on disk; the reopened
            // database must quarantine it and keep serving camera one.
            std::fs::write(row.dir.join(&row.last_shard), b"NOTADB!!")
                .expect("corrupt shard");
            let mut db = ShardedDb::open(&row.dir).expect("reopen survives corruption");
            let quarantined = db.quarantined_shards();
            let healthy: Vec<ShardWindows> = row
                .shards
                .iter()
                .filter(|s| s.shard != row.last_shard)
                .cloned()
                .collect();
            let served = sharded_heuristic_topk(&healthy, k);
            let flat: Vec<ClipWindows> =
                healthy.iter().flat_map(|s| s.clips.clone()).collect();
            let flat_ranked = heuristic_topk(&flat, k);
            let degraded_ok = quarantined.len() == 1
                && quarantined[0].0 == row.last_shard
                && db.load_index(1).expect("healthy shard serves").is_some()
                && !served.is_empty()
                && served.len() == flat_ranked.len()
                && served.iter().zip(&flat_ranked).all(|(a, b)| {
                    a.score.to_bits() == b.score.to_bits()
                        && (a.clip_id, a.window_index) == (b.clip_id, b.window_index)
                });
            assert!(
                degraded_ok,
                "{}: quarantined={quarantined:?}, served {} of {} flat results",
                row.name,
                served.len(),
                flat_ranked.len()
            );
            quarantine.push(Json::Obj(vec![
                ("scenario".into(), Json::Str(row.name.into())),
                ("quarantined_shard".into(), Json::Str(row.last_shard.clone())),
                ("healthy_shards_serve".into(), Json::Bool(degraded_ok)),
            ]));
        }

        let _ = std::fs::remove_dir_all(&row.dir);
    }

    assert!(all_identical, "index-served bags diverged from cold extraction");
    assert!(handoff_scatter_ok, "handoff scatter-gather witness failed");

    for c in &cells {
        println!(
            "{:<24} {:<10} rounds={} noise={:.2}  p@20={:.3}  AP={:.3}  floor={:.2}  {}",
            c.scenario,
            c.method,
            c.rounds,
            c.noise,
            c.precision_20,
            c.ap,
            c.floor_ap,
            if c.pass { "pass" } else { "FAIL" }
        );
    }

    let failed: Vec<String> = cells
        .iter()
        .filter(|c| !c.pass)
        .map(|c| format!("{}/{}@{}n{}", c.scenario, c.method, c.rounds, c.noise))
        .collect();
    let pass = failed.is_empty() && all_identical && handoff_scatter_ok;
    let note = if pass {
        format!(
            "PASS: {} cells over {} scenarios above their AP floors; \
             index-served bags bit-identical; handoff scatter-gather and \
             quarantine degradation verified",
            cells.len(),
            rows.len()
        )
    } else {
        format!("FAIL: cells below floor: {failed:?}")
    };
    println!("{note}");

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("scenarios".into())),
        ("fast_mode".into(), Json::Bool(fast)),
        ("seed".into(), Json::Num(SEED as f64)),
        ("top_n".into(), Json::Num(TOP_N as f64)),
        ("scenarios".into(), Json::Num(rows.len() as f64)),
        (
            "index_served_bit_identical".into(),
            Json::Bool(all_identical),
        ),
        ("handoff_scatter_gather".into(), Json::Bool(handoff_scatter_ok)),
        ("quarantine".into(), Json::Arr(quarantine)),
        ("cells".into(), Json::Arr(cells.iter().map(Cell::json).collect())),
        ("pass".into(), Json::Bool(pass)),
        ("note".into(), Json::Str(note)),
    ]);
    let path = "BENCH_scenarios.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_scenarios.json");
    println!("wrote {path}");
    assert!(pass, "scenario matrix has failing cells");
}
