//! §4's claim, tested: "this event model may also be adjusted to detect
//! U-turns, speeding and any other event that involves the abnormal
//! behavior of a vehicle." Runs the *same* features and learner against
//! U-turn and speeding queries on the paper clips — only the user's
//! notion of "relevant" changes.

use tsvr_bench::{clip1, clip2, paper_session, PAPER_SEED};
use tsvr_core::pipeline::median_heuristic_gamma;
use tsvr_core::{run_session, EventQuery, LearnerKind};
use tsvr_mil::qbe::QueryByExample;
use tsvr_mil::{GroundTruthOracle, RetrievalSession, SessionConfig};
use tsvr_svm::Kernel;

fn main() {
    println!("Other event types (paper §4) — same features, same learner, different user");
    println!("===========================================================================");
    for (name, clip) in [
        ("clip 1 (tunnel)", clip1(PAPER_SEED)),
        ("clip 2 (intersection)", clip2(PAPER_SEED)),
    ] {
        println!("\n{name}");
        println!(
            "{:<12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>11}",
            "query", "relevant", "initial", "r1", "r2", "final", "ceiling"
        );
        for query in [
            EventQuery::accidents(),
            EventQuery::u_turns(),
            EventQuery::speeding(),
        ] {
            let report = run_session(&clip, &query, LearnerKind::paper_ocsvm(), paper_session());
            if report.relevant_total == 0 {
                println!("{:<12}{:>10}  (no such events in this clip)", query.name, 0);
                continue;
            }
            println!(
                "{:<12}{:>10}{:>9.0}%{:>9.0}%{:>9.0}%{:>9.0}%{:>10.0}%",
                query.name,
                report.relevant_total,
                report.accuracies[0] * 100.0,
                report.accuracies[1] * 100.0,
                report.accuracies[2] * 100.0,
                report.accuracies.last().unwrap() * 100.0,
                report.ceiling * 100.0
            );
        }
    }
    println!("\nU-turns ride the θ feature, speeding the vdiff feature; the accident\nmodel's α vector covers all three without modification.");

    // The speeding query cannot bootstrap on clip 1: its signature is too
    // weak for the square-sum heuristic, so the initial page shows the
    // user nothing to confirm. Query-by-example (§7 future work) fixes
    // the cold start: seed with ONE known speeding window.
    let clip = clip1(PAPER_SEED);
    let query = EventQuery::speeding();
    let labels = clip.labels(&query);
    let Some(example) = labels.iter().position(|&l| l) else {
        return;
    };
    let mut qbe = QueryByExample::new(Kernel::Rbf {
        gamma: median_heuristic_gamma(&clip.bags),
    });
    qbe.add_example_bag(&clip.bags[example]);
    let oracle = GroundTruthOracle::new(labels);
    let cfg = SessionConfig {
        top_n: 20,
        feedback_rounds: 4,
        initial_from_learner: true, // start from the example, not the heuristic
    };
    let (report, _) = RetrievalSession::new(&clip.bags, qbe, &oracle, cfg).run();
    println!("\nspeeding on clip 1, seeded with example window {example} (query by example):");
    println!(
        "  rounds: {}  (vs 0% flat for the heuristic-bootstrapped session)",
        report
            .accuracies
            .iter()
            .map(|a| format!("{:.0}%", a * 100.0))
            .collect::<Vec<_>>()
            .join(" -> ")
    );
}
