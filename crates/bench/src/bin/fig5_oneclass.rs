//! Regenerates **Figure 5**: the one-class "ball" — relevant instances
//! inside the learned hyper-sphere, irrelevant ones outside (paper §5.2).
//!
//! A 2-D synthetic set is trained and the decision region printed as an
//! ASCII map, with the training points overlaid.

use tsvr_svm::{Kernel, OneClassSvm};

fn main() {
    // Relevant cluster around (0, 0), deterministic spiral jitter.
    let train: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            let a = i as f64 * 0.61;
            let r = 1.2 * ((i % 17) as f64 / 17.0).sqrt();
            vec![r * a.cos(), r * a.sin()]
        })
        .collect();
    let model = OneClassSvm::new(Kernel::Rbf { gamma: 0.8 }, 0.1)
        .fit(&train)
        .expect("training succeeds");

    println!("Figure 5 — one-class classification region");
    println!("===========================================");
    println!(
        "nu = {} support vectors = {} rho = {:.3}\n",
        model.nu,
        model.support_count(),
        model.rho
    );

    // ASCII decision map over [-4,4]^2: '#' inside, '.' outside,
    // 'o' = training point, 'X' = clearly-outlier probe.
    let probes = [
        ([3.2f64, 3.2f64], "far corner"),
        ([-3.0, 0.0], "left of the ball"),
        ([0.2, -0.1], "center"),
    ];
    let n = 33;
    for gy in 0..n {
        let y = 4.0 - 8.0 * gy as f64 / (n - 1) as f64;
        let mut row = String::new();
        for gx in 0..n {
            let x = -4.0 + 8.0 * gx as f64 / (n - 1) as f64;
            let near_train = train
                .iter()
                .any(|t| (t[0] - x).abs() < 0.13 && (t[1] - y).abs() < 0.13);
            let near_probe = probes
                .iter()
                .any(|(p, _)| (p[0] - x).abs() < 0.13 && (p[1] - y).abs() < 0.13);
            row.push(if near_probe {
                'X'
            } else if near_train {
                'o'
            } else if model.is_inlier(&[x, y]) {
                '#'
            } else {
                '.'
            });
        }
        println!("{row}");
    }

    println!("\nprobe decisions:");
    for (p, label) in probes {
        println!(
            "  {:?} ({label}): decision {:+.4} -> {}",
            p,
            model.decision(&p),
            if model.is_inlier(&p) {
                "inside (relevant)"
            } else {
                "outside (outlier)"
            }
        );
    }
    let inside = train.iter().filter(|t| model.is_inlier(t)).count();
    println!(
        "\ntraining points inside the ball: {inside}/{} (nu = {} bounds the outlier fraction)",
        train.len(),
        model.nu
    );
}
