//! Measures the progressive query planner and writes `BENCH_query.json`.
//!
//! The acceptance bar for the query language (DESIGN.md §5k):
//!
//! 1. **Latency falls with selectivity** — the same archive answers a
//!    broad query (`all`), a camera-narrowed query, and a camera+time
//!    +feature query; each added predicate must prune more work and the
//!    narrowest query must be measurably cheaper than the broad one.
//! 2. **The pruning is real** — the narrow query's plan receipt must
//!    show shards pruned at the manifest stage and windows eliminated
//!    by the stored-row pre-filter (both counters nonzero).
//! 3. **Byte-identity** — the planner's ranking is compared bit-for-bit
//!    (score bits, clip, window) against an *independently evaluated*
//!    post-filtered full scan: rank every window of every clip, drop
//!    the ones a straightforward re-implementation of the predicates
//!    rejects, take the top k. Checked with the pool pinned to 1 and to
//!    4 threads; any divergence aborts the bench.
//!
//! The archive is a real on-disk [`ShardedDb`]: clips come out of the
//! full sim→vision→trajectory pipeline, are routed into per-(camera,
//! hour) shards at distinct start times, and carry fresh TSIX index
//! segments so stage 2 runs against stored rows, not recomputed vision.
//!
//! `TSVR_BENCH_FAST=1` shrinks the archive and skips the latency gate
//! (timings stay informational); used by `scripts/ci.sh`.

use std::time::Instant;
use tsvr_bench::harness::Bencher;
use tsvr_core::{
    bags_from_bundle, build_index, bundle_from_clip, dataset_from_bundle, heuristic_topk,
    parse_query, prepare_clip, ClipWindows, PipelineOptions, Planner, Query, RankedWindow, Scorer,
    NOMINAL_FPS,
};
use tsvr_obs::json::Json;
use tsvr_sim::Scenario;
use tsvr_trajectory::WindowConfig;
use tsvr_viddb::{AnyDb, ClipMeta, ShardedDb};

const BUCKET_SECS: u64 = 3600;

/// Builds the archive: `cameras × buckets` clips, one per shard cell,
/// each a full pipeline run with its own seed, plus TSIX indexes.
fn build_archive(dir: &std::path::Path, cameras: u64, buckets: u64) -> AnyDb {
    let _ = std::fs::remove_dir_all(dir);
    let mut db = ShardedDb::open_with_bucket(dir, BUCKET_SECS).expect("open sharded db");
    let mut clip_id = 1u64;
    for cam in 0..cameras {
        for bucket in 0..buckets {
            let clip = prepare_clip(
                &Scenario::tunnel_small(100 + clip_id),
                &PipelineOptions::default(),
            );
            let meta = ClipMeta {
                clip_id,
                name: format!("clip-{clip_id}"),
                location: "bench".into(),
                camera: format!("cam-{cam:02}"),
                start_time: bucket * BUCKET_SECS + 60,
                frame_count: clip.sim.frames.len() as u32,
                width: clip.sim.width,
                height: clip.sim.height,
            };
            let bundle = bundle_from_clip(&clip, meta);
            db.put_clip(&bundle).expect("put_clip");
            let dataset = dataset_from_bundle(&bundle, WindowConfig::default());
            build_index(
                db.shard_for_clip_mut(clip_id).expect("shard for clip"),
                clip_id,
                &dataset,
            )
            .expect("build_index");
            clip_id += 1;
        }
    }
    db.sync().expect("sync");
    db.into()
}

/// Independent re-implementation of the bench predicates, used to
/// post-filter the full scan. Deliberately *not* the planner's code:
/// camera/time come straight off the metadata, the vdiff threshold
/// straight off the bundle's raw α rows.
struct RefFilter {
    camera: Option<String>,
    time: Option<(u64, u64)>,
    vdiff_ge: Option<f64>,
}

impl RefFilter {
    fn admits(&self, meta: &ClipMeta, bundle: &tsvr_viddb::ClipBundle, window_index: u64) -> bool {
        if let Some(cam) = &self.camera {
            if meta.camera != *cam {
                return false;
            }
        }
        let row = bundle
            .windows
            .iter()
            .find(|w| u64::from(w.window_index) == window_index)
            .expect("ranked window exists in bundle");
        if let Some((from, to)) = self.time {
            let w_start = meta.start_time + u64::from(row.start_frame) / NOMINAL_FPS;
            let w_end = meta.start_time + u64::from(row.end_frame).div_ceil(NOMINAL_FPS);
            if !(w_start <= to && w_end >= from) {
                return false;
            }
        }
        if let Some(min) = self.vdiff_ge {
            let hit = row
                .sequences
                .iter()
                .flat_map(|s| s.alphas.iter())
                .any(|a| a[1] >= min);
            if !hit {
                return false;
            }
        }
        true
    }
}

/// Full scan, post-filtered: rank *every* window of every clip through
/// the same canonical bag construction and heuristic scorer, then drop
/// windows the reference filter rejects and take the top k.
fn post_filtered_full_scan(db: &mut AnyDb, filter: &RefFilter, k: usize) -> Vec<RankedWindow> {
    let metas: Vec<ClipMeta> = db.list_clips().into_iter().cloned().collect();
    let mut flat = Vec::new();
    for meta in &metas {
        let bundle = db.load_clip(meta.clip_id).expect("load_clip");
        flat.push(ClipWindows {
            clip_id: meta.clip_id,
            bags: bags_from_bundle(&bundle, &WindowConfig::default().features),
        });
    }
    let total: usize = flat.iter().map(|c| c.bags.len()).sum();
    let everything = heuristic_topk(&flat, total);
    let mut kept = Vec::new();
    for r in everything {
        let meta = metas.iter().find(|m| m.clip_id == r.clip_id).unwrap();
        let bundle = db.load_clip(r.clip_id).expect("load_clip");
        if filter.admits(meta, &bundle, r.window_index) {
            kept.push(r);
            if kept.len() == k {
                break;
            }
        }
    }
    kept
}

fn rankings_equal(a: &[RankedWindow], b: &[RankedWindow]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.clip_id == y.clip_id
                && x.window_index == y.window_index
                && x.score.to_bits() == y.score.to_bits()
        })
}

fn run_planned(db: &mut AnyDb, query: &Query, k: usize) -> tsvr_core::PlanOutcome {
    Planner::new(k).run(db, query, Scorer::Heuristic).expect("plan")
}

fn main() {
    let fast = std::env::var_os("TSVR_BENCH_FAST").is_some_and(|v| v != "0");
    let (cameras, buckets) = if fast { (2u64, 2u64) } else { (4, 3) };
    let k = 10;

    let dir = std::env::temp_dir().join(format!("tsvr-bench-query-{}", std::process::id()));
    let t0 = Instant::now();
    let mut db = build_archive(&dir, cameras, buckets);
    eprintln!(
        "archive: {} clips across {} shard cells in {:?}",
        cameras * buckets,
        cameras * buckets,
        t0.elapsed()
    );

    // The three queries, broadest to narrowest. The narrow ones target
    // camera 0 / bucket 0, so most of the grid is manifest-prunable.
    let broad = parse_query("all").unwrap();
    let narrow_cam = parse_query("camera = cam-00").unwrap();
    let narrow_expr = format!(
        "camera = cam-00 and time in [0, {}] and vdiff >= 0.5",
        BUCKET_SECS - 1
    );
    let narrow = parse_query(&narrow_expr).unwrap();

    // ---- byte-identity vs the post-filtered full scan ------------------
    let filters = [
        (
            &broad,
            RefFilter {
                camera: None,
                time: None,
                vdiff_ge: None,
            },
        ),
        (
            &narrow_cam,
            RefFilter {
                camera: Some("cam-00".into()),
                time: None,
                vdiff_ge: None,
            },
        ),
        (
            &narrow,
            RefFilter {
                camera: Some("cam-00".into()),
                time: Some((0, BUCKET_SECS - 1)),
                vdiff_ge: Some(0.5),
            },
        ),
    ];
    let mut byte_identical = true;
    for (query, filter) in &filters {
        let reference = post_filtered_full_scan(&mut db, filter, k);
        for threads in [1usize, 4] {
            tsvr_par::set_threads(threads);
            let planned = run_planned(&mut db, query, k);
            let ok = rankings_equal(&planned.ranking, &reference);
            byte_identical &= ok;
            assert!(
                ok,
                "planner ranking diverged from post-filtered full scan for {query} at {threads} thread(s)"
            );
        }
    }
    tsvr_par::set_threads(0);

    // ---- plan receipts --------------------------------------------------
    let broad_out = run_planned(&mut db, &broad, k);
    let narrow_out = run_planned(&mut db, &narrow, k);
    let stats = narrow_out.stats;
    assert!(
        stats.shards_pruned > 0,
        "narrow query pruned no shards: {stats:?}"
    );
    assert!(
        stats.windows_prefiltered > 0,
        "narrow query pre-filtered no windows: {stats:?}"
    );
    assert!(narrow_out.degraded.is_empty(), "healthy archive degraded");
    eprintln!(
        "broad plan: {:?}\nnarrow plan: {stats:?}",
        broad_out.stats
    );

    // ---- latency vs selectivity ----------------------------------------
    let mut b = Bencher::new("query");
    let broad_ns = b
        .bench("plan/broad_all", || run_planned(&mut db, &broad, k))
        .ns_per_iter;
    let cam_ns = b
        .bench("plan/narrow_camera", || {
            run_planned(&mut db, &narrow_cam, k)
        })
        .ns_per_iter;
    let narrow_ns = b
        .bench("plan/narrow_camera_time_vdiff", || {
            run_planned(&mut db, &narrow, k)
        })
        .ns_per_iter;
    let speedup = broad_ns / narrow_ns;
    println!(
        "latency: broad {broad_ns:.0} ns, camera {cam_ns:.0} ns, \
         camera+time+vdiff {narrow_ns:.0} ns ({speedup:.2}x broad/narrow)"
    );

    let _ = std::fs::remove_dir_all(&dir);

    // Fast mode is a correctness smoke: single-batch timings are too
    // noisy to gate on. Full mode requires the narrowest query to be
    // measurably cheaper than the broad scan.
    let target = if fast { 0.0 } else { 1.3 };
    let pass = byte_identical
        && stats.shards_pruned > 0
        && stats.windows_prefiltered > 0
        && speedup >= target;
    let note = format!(
        "{} ({}): narrow query {speedup:.2}x cheaper than broad (target {target}x); \
         narrow plan pruned {}/{} shards and pre-filtered {}/{} windows; \
         planner rankings byte-identical to post-filtered full scan at 1/4 threads",
        if pass { "PASS" } else { "FAIL" },
        if fast { "smoke" } else { "full" },
        stats.shards_pruned,
        stats.shards_total,
        stats.windows_prefiltered,
        stats.windows_scanned,
    );
    println!("{note}");

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("query".into())),
        (
            "workload".into(),
            Json::Str(format!(
                "top-{k} over {} pipeline clips in {} (camera, hour) shards",
                cameras * buckets,
                cameras * buckets
            )),
        ),
        ("fast_mode".into(), Json::Bool(fast)),
        ("narrow_expr".into(), Json::Str(narrow_expr)),
        ("broad_ns".into(), Json::Num(broad_ns)),
        ("narrow_camera_ns".into(), Json::Num(cam_ns)),
        ("narrow_full_ns".into(), Json::Num(narrow_ns)),
        ("broad_over_narrow".into(), Json::Num(speedup)),
        ("shards_total".into(), Json::Num(stats.shards_total as f64)),
        ("shards_pruned".into(), Json::Num(stats.shards_pruned as f64)),
        (
            "windows_scanned".into(),
            Json::Num(stats.windows_scanned as f64),
        ),
        (
            "windows_prefiltered".into(),
            Json::Num(stats.windows_prefiltered as f64),
        ),
        (
            "windows_ranked".into(),
            Json::Num(stats.windows_ranked as f64),
        ),
        (
            "rankings_byte_identical".into(),
            Json::Bool(byte_identical),
        ),
        ("target_speedup".into(), Json::Num(target)),
        ("pass".into(), Json::Bool(pass)),
        ("note".into(), Json::Str(note)),
    ]);
    let path = "BENCH_query.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_query.json");
    println!("wrote {path}");
}
