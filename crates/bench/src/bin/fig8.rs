//! Regenerates **Figure 8**: retrieval accuracy within the top 20 video
//! sequences for clip 1 (tunnel), per feedback round, for the proposed
//! MIL One-class SVM framework vs. the weighted-RF baseline.
//!
//! Paper shape: both methods start at 40% (identical initial round);
//! the MIL framework "increases steadily from 40% to 60%" while the
//! weighted RF gains only ~10% overall and "keeps bouncing around
//! between 35% and 50%".

use tsvr_bench::{clip1, print_accuracy_table, run_accident_session, PAPER_SEED};
use tsvr_core::LearnerKind;

fn main() {
    let clip = clip1(PAPER_SEED);
    let mil = run_accident_session(&clip, LearnerKind::paper_ocsvm());
    let wrf = run_accident_session(&clip, LearnerKind::paper_weighted_rf());
    print_accuracy_table(
        "Figure 8 — retrieval accuracy, clip 1 (tunnel, 2504 frames)",
        &[&mil, &wrf],
    );
    println!("\npaper reference:");
    println!(
        "{:<22}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "MIL_OCSVM (paper)", "40%", "~45%", "~50%", "~55%", "60%"
    );
    println!(
        "{:<22}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "Weighted_RF (paper)", "40%", "~35-50%", "~50%", "50%", "~40-50%"
    );
}
