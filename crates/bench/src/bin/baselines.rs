//! **Extension** — classic MIL baselines from the paper's §2.1 review.
//!
//! Runs Diverse Density \[6\] and EM-DD \[7\] through the same interactive
//! sessions as the paper's One-class-SVM learner and the weighted-RF
//! baseline, on both clips. Not a paper table; included because the
//! paper positions its contribution against exactly these algorithms.

use tsvr_bench::{clip1, clip2, print_accuracy_table, run_accident_session, PAPER_SEED};
use tsvr_core::LearnerKind;

fn main() {
    for (name, clip) in [
        ("clip 1 (tunnel)", clip1(PAPER_SEED)),
        ("clip 2 (intersection)", clip2(PAPER_SEED)),
    ] {
        let ocsvm = run_accident_session(&clip, LearnerKind::paper_ocsvm());
        let wrf = run_accident_session(&clip, LearnerKind::paper_weighted_rf());
        let dd = run_accident_session(&clip, LearnerKind::DiverseDensity { scale: 8.0 });
        let emdd = run_accident_session(&clip, LearnerKind::EmDd { scale: 8.0 });
        let misvm = run_accident_session(&clip, LearnerKind::MiSvm { c: 10.0 });
        print_accuracy_table(
            &format!("MIL learner comparison — {name}"),
            &[&ocsvm, &wrf, &dd, &emdd, &misvm],
        );
    }
}
