//! Load-tests the concurrent retrieval service and writes
//! `BENCH_serve.json`.
//!
//! One scripted relevance-feedback session (open, N feedback rounds,
//! final page, close) is driven over real TCP connections at 1, 4, and
//! 16 concurrent clients against a single [`tsvr_serve::Server`]. For
//! each level the bench records wall-clock throughput (requests/s) and
//! the p50/p99 per-request latency across every client.
//!
//! Correctness gate: every ranking a TCP client receives — at every
//! concurrency level — must be byte-identical (compared as encoded
//! JSON arrays) to the ranking produced by the same script run
//! sequentially through the in-process [`Service::handle`] path. The
//! server may reorder *sessions*; it must never change a ranking.
//!
//! `TSVR_BENCH_FAST=1` shortens the script (used by `scripts/ci.sh`).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use tsvr_bench::PAPER_SEED;
use tsvr_core::{bundle_from_clip, prepare_clip, PipelineOptions};
use tsvr_obs::json::Json;
use tsvr_serve::{
    decode_response, encode_request, Envelope, Request, Response, Server, ServerConfig, Service,
    ServiceConfig,
};
use tsvr_sim::Scenario;
use tsvr_viddb::record::ClipBundle;
use tsvr_viddb::{ClipMeta, VideoDb};

const LEVELS: [usize; 3] = [1, 4, 16];

fn make_bundle() -> ClipBundle {
    let scenario = Scenario::tunnel_small(PAPER_SEED);
    let clip = prepare_clip(&scenario, &PipelineOptions::default());
    bundle_from_clip(
        &clip,
        ClipMeta {
            clip_id: 1,
            name: "bench".into(),
            location: "bench-site".into(),
            camera: "cam-0".into(),
            start_time: 0,
            frame_count: scenario.total_frames,
            width: clip.sim.width,
            height: clip.sim.height,
        },
    )
}

fn fresh_service(bundle: &ClipBundle) -> Service {
    let mut db = VideoDb::in_memory();
    db.put_clip(bundle).expect("store clip");
    Service::new(db, ServiceConfig::default())
}

fn ranking_json(ranking: &[u64]) -> String {
    Json::Arr(ranking.iter().map(|&w| Json::Num(w as f64)).collect()).to_string()
}

/// The scripted session, parametrized over the transport. Returns the
/// encoded JSON of every ranking the client was served, in order.
fn script(call: &mut dyn FnMut(Request) -> Response, salt: u64, rounds: usize) -> Vec<String> {
    let Response::Opened {
        session_id,
        windows,
        ..
    } = call(Request::Open {
        clip_id: 1,
        query: "accident".into(),
        learner: "ocsvm".into(),
    }) else {
        panic!("open failed")
    };
    let mut rankings = Vec::new();
    for round in 1..=rounds {
        let Response::Page { ranking, .. } = call(Request::Page {
            session_id,
            n: Some(windows),
        }) else {
            panic!("page failed")
        };
        let labels: Vec<(u32, bool)> = ranking
            .iter()
            .take(6)
            .map(|&w| (w as u32, (w + salt).is_multiple_of(3)))
            .collect();
        rankings.push(ranking_json(&ranking));
        let resp = call(Request::Feedback { session_id, labels });
        assert!(
            matches!(resp, Response::Learned { round: r, .. } if r == round),
            "feedback round {round} failed: {resp:?}"
        );
    }
    let Response::Page { ranking, .. } = call(Request::Page {
        session_id,
        n: Some(windows),
    }) else {
        panic!("final page failed")
    };
    rankings.push(ranking_json(&ranking));
    call(Request::Close { session_id });
    rankings
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Nanoseconds spent per request, write-to-response.
    latencies: Vec<u64>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
            latencies: Vec::new(),
        }
    }

    fn call(&mut self, req: Request) -> Response {
        let line = encode_request(&Envelope::new(req));
        let started = Instant::now();
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write request");
        let mut buf = String::new();
        self.reader.read_line(&mut buf).expect("read response");
        self.latencies.push(started.elapsed().as_nanos() as u64);
        decode_response(&buf).expect("decode response")
    }
}

struct LevelResult {
    sessions: usize,
    requests: usize,
    throughput_rps: f64,
    p50_ns: u64,
    p99_ns: u64,
    rankings: Vec<Vec<String>>,
}

fn run_level(bundle: &ClipBundle, sessions: usize, rounds: usize) -> LevelResult {
    let service = Arc::new(fresh_service(bundle));
    let server = Server::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            workers: sessions,
            queue_cap: 64,
        },
    )
    .expect("start server");
    let addr = server.addr();

    let barrier = Arc::new(Barrier::new(sessions + 1));
    let handles: Vec<_> = (0..sessions)
        .map(|salt| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                barrier.wait();
                let rankings = script(&mut |req| client.call(req), salt as u64, rounds);
                (rankings, client.latencies)
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let wall = started.elapsed();
    server.shutdown();

    let mut latencies: Vec<u64> = Vec::new();
    let mut rankings = Vec::new();
    for (r, l) in outcomes {
        rankings.push(r);
        latencies.extend(l);
    }
    latencies.sort_unstable();
    let requests = latencies.len();
    let pct = |p: usize| latencies[((requests - 1) * p) / 100];
    LevelResult {
        sessions,
        requests,
        throughput_rps: requests as f64 / wall.as_secs_f64(),
        p50_ns: pct(50),
        p99_ns: pct(99),
        rankings,
    }
}

fn main() {
    let fast = std::env::var_os("TSVR_BENCH_FAST").is_some_and(|v| v != "0");
    let rounds = if fast { 2 } else { 3 };
    let bundle = make_bundle();

    // Single-threaded in-process reference: the same scripts, run
    // sequentially through Service::handle on one thread. Every TCP
    // client below must reproduce its salt's rankings exactly.
    let max_sessions = *LEVELS.iter().max().unwrap();
    let reference: Vec<Vec<String>> = {
        let service = fresh_service(&bundle);
        (0..max_sessions)
            .map(|salt| {
                script(
                    &mut |req| service.handle(&Envelope::new(req)),
                    salt as u64,
                    rounds,
                )
            })
            .collect()
    };

    let mut level_docs = Vec::new();
    for &sessions in &LEVELS {
        let res = run_level(&bundle, sessions, rounds);
        for (salt, served) in res.rankings.iter().enumerate() {
            assert_eq!(
                served, &reference[salt],
                "TCP rankings diverged from single-threaded path \
                 (level {sessions}, client {salt})"
            );
        }
        println!(
            "{:>2} sessions: {} requests, {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms",
            res.sessions,
            res.requests,
            res.throughput_rps,
            res.p50_ns as f64 / 1e6,
            res.p99_ns as f64 / 1e6,
        );
        level_docs.push(Json::Obj(vec![
            ("sessions".into(), Json::Num(res.sessions as f64)),
            ("requests".into(), Json::Num(res.requests as f64)),
            ("throughput_rps".into(), Json::Num(res.throughput_rps)),
            ("p50_ns".into(), Json::Num(res.p50_ns as f64)),
            ("p99_ns".into(), Json::Num(res.p99_ns as f64)),
        ]));
    }

    let note = format!(
        "PASS: rankings byte-identical to the single-threaded in-process \
         path at {LEVELS:?} concurrent sessions"
    );
    println!("{note}");

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("serve".into())),
        (
            "workload".into(),
            Json::Str(format!(
                "scripted feedback session ({rounds} rounds, ocsvm, tunnel_small) \
                 over TCP at 1/4/16 concurrent clients"
            )),
        ),
        ("fast_mode".into(), Json::Bool(fast)),
        ("levels".into(), Json::Arr(level_docs)),
        ("identical_to_single_thread".into(), Json::Bool(true)),
        ("pass".into(), Json::Bool(true)),
        ("note".into(), Json::Str(note)),
    ]);
    let path = "BENCH_serve.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
