//! Calibration helper: sweeps spawn density and prints TS counts so the
//! paper presets can be matched to §6.2's 109/168 trajectory sequences.

use tsvr_core::{prepare_clip, PipelineOptions};
use tsvr_sim::Scenario;

fn main() {
    println!("clip1 (tunnel) sweep:");
    for interval in [155.0, 160.0, 168.0, 172.0, 178.0] {
        let mut s = Scenario::tunnel_paper(2007);
        s.mean_spawn_interval = interval;
        let clip = prepare_clip(&s, &PipelineOptions::default());
        println!(
            "  interval {:>5}: tracks {:>3} windows {:>3} TSs {:>4}",
            interval,
            clip.vision.tracks.len(),
            clip.dataset.window_count(),
            clip.dataset.sequence_count()
        );
    }
    println!("clip2 (intersection) sweep:");
    for interval in [88.0, 90.0, 93.0, 95.0] {
        let mut s = Scenario::intersection_paper(2007);
        s.mean_spawn_interval = interval;
        let clip = prepare_clip(&s, &PipelineOptions::default());
        println!(
            "  interval {:>5}: tracks {:>3} windows {:>3} TSs {:>4}",
            interval,
            clip.vision.tracks.len(),
            clip.dataset.window_count(),
            clip.dataset.sequence_count()
        );
    }
}
