//! **Ablation A4** — RBF kernel width sensitivity.
//!
//! The paper states only that an RBF kernel is used (Eq. 6, with a typo
//! — see DESIGN.md) and reports no width. This ablation sweeps fixed γ
//! values against the per-clip median-heuristic choice the library
//! defaults to, on both clips.

use tsvr_bench::{clip1, clip2, run_accident_session, PAPER_SEED};
use tsvr_core::pipeline::median_heuristic_gamma;
use tsvr_core::LearnerKind;

fn main() {
    println!("Ablation A4 — RBF width (final-round accuracy@20)");
    println!("==================================================");
    let c1 = clip1(PAPER_SEED);
    let c2 = clip2(PAPER_SEED);
    println!(
        "median-heuristic gammas: clip1 {:.2}, clip2 {:.2}\n",
        median_heuristic_gamma(&c1.bags),
        median_heuristic_gamma(&c2.bags)
    );
    println!(
        "{:>10} {:>12} {:>12}",
        "gamma", "clip1 final", "clip2 final"
    );
    for gamma in [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
        let r1 = run_accident_session(&c1, LearnerKind::OcSvm { gamma, z: 0.05 });
        let r2 = run_accident_session(&c2, LearnerKind::OcSvm { gamma, z: 0.05 });
        println!(
            "{:>10} {:>11.0}% {:>11.0}%",
            gamma,
            r1.accuracies.last().unwrap() * 100.0,
            r2.accuracies.last().unwrap() * 100.0
        );
    }
    let r1 = run_accident_session(&c1, LearnerKind::paper_ocsvm());
    let r2 = run_accident_session(&c2, LearnerKind::paper_ocsvm());
    println!(
        "{:>10} {:>11.0}% {:>11.0}%",
        "auto",
        r1.accuracies.last().unwrap() * 100.0,
        r2.accuracies.last().unwrap() * 100.0
    );
    println!("\nno single fixed width suits both clips (their feature spreads differ by ~4x);\nthe per-clip median heuristic matches the best fixed width on each.");
}
