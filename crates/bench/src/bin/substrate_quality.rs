//! Substrate validation: tracking quality of the vision pipeline on the
//! two paper clips (not a paper table — the paper asserts its substrate
//! \[20\] works; this binary shows ours does, with the standard MOT
//! measures).

use tsvr_bench::PAPER_SEED;
use tsvr_core::{prepare_clip, PipelineOptions};
use tsvr_sim::Scenario;
use tsvr_vision::quality::evaluate;

fn main() {
    println!("Substrate validation — tracking quality vs simulator ground truth");
    println!("=================================================================");
    println!(
        "{:<16}{:>10}{:>10}{:>10}{:>9}{:>12}{:>12}",
        "clip", "gt pts", "coverage", "MOTP px", "id sw", "fragments", "false trks"
    );
    for (name, scenario) in [
        ("clip1-tunnel", Scenario::tunnel_paper(PAPER_SEED)),
        ("clip2-xing", Scenario::intersection_paper(PAPER_SEED)),
    ] {
        let clip = prepare_clip(&scenario, &PipelineOptions::default());
        let q = evaluate(&clip.vision.tracks, &clip.sim, 15.0);
        println!(
            "{:<16}{:>10}{:>9.0}%{:>10.2}{:>9}{:>12.2}{:>12}",
            name,
            q.gt_points,
            q.coverage() * 100.0,
            q.motp,
            q.id_switches,
            q.mean_fragments,
            q.false_tracks
        );
    }
    println!("\ncoverage = matched ground-truth vehicle-frames; MOTP = mean matched");
    println!("distance (includes the systematic centroid bias from shadow smear);");
    println!("fragments = distinct tracks per vehicle (1.0 = unbroken).");
}
