//! Diagnostic dump: per-window labels, heuristic ranks and feature
//! peaks, plus incident-vehicle tracking coverage. Not part of the
//! paper's tables; used to debug calibration.

use tsvr_bench::{clip1, clip2, PAPER_SEED};
use tsvr_core::{ClipArtifacts, EventQuery};
use tsvr_mil::heuristic;
use tsvr_mil::session::rank_by;

fn dump(name: &str, clip: &ClipArtifacts) {
    println!("==== {name} ====");
    let labels = clip.labels(&EventQuery::accidents());
    let ranking = rank_by(&clip.bags, heuristic::bag_score);
    let rank_of: std::collections::HashMap<usize, usize> =
        ranking.iter().enumerate().map(|(r, &b)| (b, r)).collect();

    // Incident tracking coverage.
    println!("incidents:");
    for rec in &clip.sim.incidents {
        // Which windows overlap?
        let wins: Vec<usize> = clip
            .dataset
            .windows
            .iter()
            .filter(|w| rec.overlaps(w.start_frame, w.end_frame))
            .map(|w| w.index)
            .collect();
        println!(
            "  {:<16} frames {:>4}..{:<4} vehicles {:?} windows {:?}",
            rec.kind.name(),
            rec.start_frame,
            rec.end_frame,
            rec.vehicle_ids,
            wins
        );
    }

    println!("relevant windows (label=1):");
    for (i, w) in clip.dataset.windows.iter().enumerate() {
        if !labels[i] {
            continue;
        }
        let best = heuristic::best_instance(&clip.bags[i]);
        let peak = best.map(|b| clip.bags[i].instances[b].peak_row().to_vec());
        println!(
            "  win {:>3} frames {:>4}..{:<4} nTS {:>2} heur-rank {:>3} peak {:?}",
            w.index,
            w.start_frame,
            w.end_frame,
            w.sequences.len(),
            rank_of[&w.index],
            peak.map(|p| p
                .iter()
                .map(|x| (x * 100.0).round() / 100.0)
                .collect::<Vec<_>>())
        );
    }
    println!("top-20 heuristic windows:");
    for &b in ranking.iter().take(20) {
        let best = heuristic::best_instance(&clip.bags[b]);
        let peak = best.map(|ix| clip.bags[b].instances[ix].peak_row().to_vec());
        println!(
            "  win {:>3} label {} score {:.3} peak {:?}",
            b,
            labels[b] as u8,
            heuristic::bag_score(&clip.bags[b]),
            peak.map(|p| p
                .iter()
                .map(|x| (x * 100.0).round() / 100.0)
                .collect::<Vec<_>>())
        );
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    if which != "2" {
        dump("clip1 tunnel", &clip1(PAPER_SEED));
    }
    if which != "1" {
        dump("clip2 intersection", &clip2(PAPER_SEED));
    }
}
