//! Regenerates **Figure 9**: retrieval accuracy within the top 20 video
//! sequences for clip 2 (road intersection), per feedback round.
//!
//! Paper shape: accidents here "often involve two or more vehicles";
//! the MIL framework's gains are smaller than on clip 1 but it remains
//! "far better than that of the weighted RF method, in which
//! performance degradation occurs right after the initial iteration".

use tsvr_bench::{clip2, print_accuracy_table, run_accident_session, PAPER_SEED};
use tsvr_core::LearnerKind;

fn main() {
    let clip = clip2(PAPER_SEED);
    let mil = run_accident_session(&clip, LearnerKind::paper_ocsvm());
    let wrf = run_accident_session(&clip, LearnerKind::paper_weighted_rf());
    print_accuracy_table(
        "Figure 9 — retrieval accuracy, clip 2 (intersection, 592 frames)",
        &[&mil, &wrf],
    );
    println!(
        "\npaper shape: MIL improves moderately; Weighted_RF degrades after the initial round."
    );
}
