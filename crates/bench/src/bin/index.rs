//! Measures what the persistent feature index buys at query time and
//! writes `BENCH_index.json`.
//!
//! Two ways to answer the same cross-clip heuristic query over a stored
//! clip are timed:
//!
//! * **cold** — the no-index path: run the full extraction pipeline
//!   (render, segment, track, feature extraction), convert to bags, and
//!   rank — what every query pays when derived data is not persisted;
//! * **indexed** — load the clip's stored `TSIX` segment from the
//!   database, rebuild the dataset (pure decode, bit-identical
//!   features), convert to bags, and rank.
//!
//! Both paths produce identical rankings — the index stores raw α rows
//! via `f64::to_bits` — so the timings compare the same computation.
//!
//! `TSVR_BENCH_FAST=1` switches to the small tunnel clip and the
//! harness's single-batch smoke mode (used by `scripts/ci.sh`).

use tsvr_bench::harness::Bencher;
use tsvr_bench::PAPER_SEED;
use tsvr_core::{
    bags_from_dataset, build_index, bundle_from_clip, heuristic_topk, load_index, prepare_clip,
    ClipWindows, PipelineOptions,
};
use tsvr_obs::json::Json;
use tsvr_sim::Scenario;
use tsvr_trajectory::WindowConfig;
use tsvr_viddb::{ClipMeta, VideoDb};

const TOP_K: usize = 20;

fn main() {
    let fast = std::env::var_os("TSVR_BENCH_FAST").is_some_and(|v| v != "0");
    let (scenario, clip_name) = if fast {
        (Scenario::tunnel_small(PAPER_SEED), "tunnel_small")
    } else {
        (
            Scenario::tunnel_paper(PAPER_SEED),
            "tunnel_paper (2504 frames)",
        )
    };
    let opts = PipelineOptions::default();
    let wcfg = WindowConfig::default();

    // Store the clip and its feature index once, up front — the cost
    // being amortized away is exactly the one the cold path re-pays per
    // query.
    let clip = prepare_clip(&scenario, &opts);
    let mut db = VideoDb::in_memory();
    db.put_clip(&bundle_from_clip(
        &clip,
        ClipMeta {
            clip_id: 1,
            name: "bench".into(),
            location: "bench-site".into(),
            camera: "cam-0".into(),
            start_time: 0,
            frame_count: scenario.total_frames,
            width: clip.sim.width,
            height: clip.sim.height,
        },
    ))
    .expect("store clip");
    build_index(&mut db, 1, &clip.dataset).expect("store index");

    let rank = |dataset: &tsvr_trajectory::Dataset| {
        let clips = [ClipWindows {
            clip_id: 1,
            bags: bags_from_dataset(dataset),
        }];
        heuristic_topk(&clips, TOP_K)
    };

    let mut b = Bencher::new("index");
    let cold_ns = b
        .bench("query/cold_extraction", || {
            let clip = prepare_clip(&scenario, &opts);
            rank(&clip.dataset)
        })
        .ns_per_iter;
    let indexed_ns = b
        .bench("query/index_served", || {
            let ds = load_index(&mut db, 1, &wcfg)
                .expect("db read")
                .expect("index fresh");
            rank(&ds)
        })
        .ns_per_iter;

    // Sanity: the two paths rank identically, bit for bit.
    let served = load_index(&mut db, 1, &wcfg).unwrap().expect("index fresh");
    let (a, c) = (rank(&served), rank(&clip.dataset));
    assert_eq!(a.len(), c.len());
    for (x, y) in a.iter().zip(&c) {
        assert_eq!(
            (x.score.to_bits(), x.clip_id, x.window_index),
            (y.score.to_bits(), y.clip_id, y.window_index),
            "index-served ranking diverged from cold extraction"
        );
    }

    let speedup = cold_ns / indexed_ns;
    let target = 2.0;
    let pass = speedup >= target;
    let note = if pass {
        format!("PASS: index-served query {speedup:.1}x faster than cold extraction")
    } else {
        format!("FAIL: index-served speedup {speedup:.1}x < {target}x")
    };
    println!("cold {cold_ns:.0} ns, indexed {indexed_ns:.0} ns — {note}");

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("index".into())),
        (
            "workload".into(),
            Json::Str(format!(
                "heuristic top-{TOP_K} on {clip_name}: full extraction vs stored TSIX segment"
            )),
        ),
        ("fast_mode".into(), Json::Bool(fast)),
        ("cold_ns".into(), Json::Num(cold_ns)),
        ("indexed_ns".into(), Json::Num(indexed_ns)),
        ("speedup".into(), Json::Num(speedup)),
        ("target_speedup".into(), Json::Num(target)),
        ("pass".into(), Json::Bool(pass)),
        ("note".into(), Json::Str(note)),
    ]);
    let path = "BENCH_index.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_index.json");
    println!("wrote {path}");
}
