//! **Ablation A2** — the `z` adjustment of Eq. 9.
//!
//! The paper sets the One-class SVM outlier fraction to
//! `δ = 1 − (h/H + z)` and reports that "z = 0.05 works well". This
//! ablation sweeps `z` on both clips.

use tsvr_bench::{clip1, clip2, run_accident_session, PAPER_SEED};
use tsvr_core::LearnerKind;

fn main() {
    println!("Ablation A2 — Eq. 9's z parameter (final-round accuracy@20)");
    println!("============================================================");
    let c1 = clip1(PAPER_SEED);
    let c2 = clip2(PAPER_SEED);
    println!(
        "{:>6} {:>22} {:>22}",
        "z", "clip1 final (init)", "clip2 final (init)"
    );
    for z in [0.0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3] {
        let r1 = run_accident_session(&c1, LearnerKind::OcSvmAuto { z });
        let r2 = run_accident_session(&c2, LearnerKind::OcSvmAuto { z });
        println!(
            "{:>6.2} {:>15.0}% ({:>3.0}%) {:>15.0}% ({:>3.0}%)",
            z,
            r1.accuracies.last().unwrap() * 100.0,
            r1.accuracies[0] * 100.0,
            r2.accuracies.last().unwrap() * 100.0,
            r2.accuracies[0] * 100.0
        );
    }
    println!("\npaper: z = 0.05 'works well'; z shifts how many training TSs the one-class\nSVM may discard as outliers on top of the h/H estimate.");
}
