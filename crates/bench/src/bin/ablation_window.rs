//! **Ablation A3** — window size and sampling rate (paper §5.1).
//!
//! The paper derives window size 3 from the typical car-crash length
//! (~15 frames) at 5 frames/checkpoint. This ablation sweeps the window
//! size (and one alternative sampling rate) and reruns the clip-1
//! accident session, showing the event-length argument empirically.

use tsvr_bench::{paper_session, PAPER_SEED};
use tsvr_core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
use tsvr_mil::Normalization;
use tsvr_sim::Scenario;
use tsvr_trajectory::checkpoint::FeatureConfig;
use tsvr_trajectory::WindowConfig;

fn run(window_size: usize, sampling_rate: u32) -> (usize, usize, f64, f64, f64) {
    let opts = PipelineOptions {
        window: WindowConfig {
            window_size,
            stride: window_size,
            features: FeatureConfig {
                sampling_rate,
                ..FeatureConfig::default()
            },
        },
        ..PipelineOptions::default()
    };
    let clip = prepare_clip(&Scenario::tunnel_paper(PAPER_SEED), &opts);
    let mil = run_session(
        &clip,
        &EventQuery::accidents(),
        LearnerKind::paper_ocsvm(),
        paper_session(),
    );
    let wrf = run_session(
        &clip,
        &EventQuery::accidents(),
        LearnerKind::WeightedRf(Normalization::Percentage),
        paper_session(),
    );
    (
        clip.dataset.window_count(),
        clip.dataset.sequence_count(),
        mil.accuracies[0],
        *mil.accuracies.last().unwrap(),
        *wrf.accuracies.last().unwrap(),
    )
}

fn main() {
    println!("Ablation A3 — window size / sampling rate (clip 1, accuracy@20)");
    println!("================================================================");
    println!(
        "{:>7} {:>6} {:>9} {:>6} {:>9} {:>10} {:>10}",
        "window", "rate", "windows", "TSs", "initial", "MIL final", "WRF final"
    );
    for (w, rate) in [
        (2usize, 5u32),
        (3, 5),
        (4, 5),
        (5, 5),
        (6, 5),
        (3, 3),
        (3, 8),
    ] {
        let (wins, tss, init, mil, wrf) = run(w, rate);
        println!(
            "{:>7} {:>6} {:>9} {:>6} {:>8.0}% {:>9.0}% {:>9.0}%",
            w,
            rate,
            wins,
            tss,
            init * 100.0,
            mil * 100.0,
            wrf * 100.0
        );
    }
    println!("\npaper: 15-frame events at 5 frames/checkpoint give window size 3; larger\nwindows dilute the event signature, smaller ones cut it in half.");
}
