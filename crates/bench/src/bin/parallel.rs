//! Measures the `tsvr-par` runtime's effect on the pipeline hot loops
//! and writes `BENCH_parallel.json`.
//!
//! The same two workloads — clip preparation (render/segment/track +
//! feature extraction) and a full OC-SVM retrieval session (Gram +
//! batch bag scoring) — are timed with the worker pool pinned to one
//! thread and to `max(4, available_parallelism)` threads. Both runs
//! share code, data, and compiler flags; by the runtime's determinism
//! invariant they also produce bit-identical results, so the timings
//! compare exactly the same computation.
//!
//! Measurement is **paired**: each round times the 1-thread and
//! n-thread configurations back to back and the reported speedup is
//! the median of the per-round ratios. Sequential A-then-B timing let
//! slow drift (thermal, page cache, scheduler mood) show up as a fake
//! 5% "regression" on single-core hosts; pairing cancels drift because
//! both configurations see the same machine state within a round.
//!
//! The acceptance target depends on the host, and the parity escape
//! hatch exists **only** for true single-core hosts, where a speedup
//! is physically impossible (the runtime's sequential fallback clamps
//! the pool to the hardware). Any host with two or more hardware
//! threads must show a real speedup. On top of the target, every host
//! must satisfy the no-slowdown rule: threads=n is never more than 2%
//! slower than threads=1 on either workload. The JSON carries
//! `available_parallelism` and `pass_rule` so a reader can tell an
//! algorithmic regression from a starved host.
//!
//! `TSVR_BENCH_FAST=1` switches to the small tunnel clip and fewer
//! rounds (used by `scripts/ci.sh`).

use std::time::Instant;
use tsvr_bench::{paper_session, PAPER_SEED};
use tsvr_core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
use tsvr_obs::json::Json;
use tsvr_sim::Scenario;

/// Times one invocation in nanoseconds.
fn time_one<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    let out = f();
    let ns = start.elapsed().as_nanos() as f64;
    drop(out);
    ns
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let fast = std::env::var_os("TSVR_BENCH_FAST").is_some_and(|v| v != "0");
    let (scenario, clip_name, rounds) = if fast {
        (Scenario::tunnel_small(PAPER_SEED), "tunnel_small", 3usize)
    } else {
        (
            Scenario::tunnel_paper(PAPER_SEED),
            "tunnel_paper (2504 frames)",
            7usize,
        )
    };
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let many = available.max(4);
    eprintln!(
        "host parallelism: {available}; comparing 1 thread vs {many} threads on {clip_name} \
         ({rounds} paired rounds)"
    );

    let opts = PipelineOptions::default();
    let prepare = || prepare_clip(&scenario, &opts);

    let clip = prepare();
    let cfg = paper_session();
    let session = || {
        run_session(
            &clip,
            &EventQuery::accidents(),
            LearnerKind::paper_ocsvm(),
            cfg,
        )
    };

    // Warm both configurations before measuring so first-touch costs
    // (lazy thread-count resolution, allocator growth) hit no round.
    tsvr_par::set_threads(1);
    drop(prepare());
    drop(session());
    tsvr_par::set_threads(many);
    drop(prepare());
    drop(session());

    let mut prep_1s = Vec::with_capacity(rounds);
    let mut prep_ns = Vec::with_capacity(rounds);
    let mut sess_1s = Vec::with_capacity(rounds);
    let mut sess_ns = Vec::with_capacity(rounds);
    let mut prep_ratios = Vec::with_capacity(rounds);
    let mut sess_ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        tsvr_par::set_threads(1);
        let p1 = time_one(prepare);
        tsvr_par::set_threads(many);
        let pn = time_one(prepare);
        tsvr_par::set_threads(1);
        let s1 = time_one(session);
        tsvr_par::set_threads(many);
        let sn = time_one(session);
        eprintln!(
            "round {round}: prepare {:.0}ms -> {:.0}ms, session {:.0}ms -> {:.0}ms",
            p1 / 1e6,
            pn / 1e6,
            s1 / 1e6,
            sn / 1e6
        );
        prep_1s.push(p1);
        prep_ns.push(pn);
        sess_1s.push(s1);
        sess_ns.push(sn);
        prep_ratios.push(p1 / pn);
        sess_ratios.push(s1 / sn);
    }
    tsvr_par::set_threads(0); // restore env/auto selection

    let prep_1 = median(&mut prep_1s);
    let prep_n = median(&mut prep_ns);
    let sess_1 = median(&mut sess_1s);
    let sess_n = median(&mut sess_ns);
    let prep_speedup = median(&mut prep_ratios);
    let sess_speedup = median(&mut sess_ratios);

    // Parity is only a legitimate outcome when the hardware cannot run
    // two threads at once. Multi-core hosts must show a real speedup.
    let (target, pass_rule) = match available {
        1 => (0.98, "parity"),
        2..=3 => (1.2, "speedup"),
        _ => (2.0, "speedup"),
    };
    // Regression gate on every host: n threads may never be more than
    // 2% slower than one thread — the sequential fallback guarantees
    // the parallel entry points cost nothing when forking can't win.
    // Fast mode gates only gross prepare regressions (>15%): its rounds
    // are ~0.4s with sub-millisecond sessions, where host noise alone
    // exceeds the real 2% target (same policy as the obs_overhead
    // smoke); the full-mode run enforces the tight rule.
    let (pass, no_slowdown) = if fast {
        let ok = prep_speedup >= 0.85;
        (ok, ok)
    } else {
        let no_slowdown = prep_speedup >= 0.98 && sess_speedup >= 0.98;
        (prep_speedup >= target && no_slowdown, no_slowdown)
    };
    println!("prepare_clip: {prep_speedup:.2}x with {many} threads; session: {sess_speedup:.2}x");
    let note = if pass && fast {
        format!(
            "PASS (fast smoke): prepare_clip speedup {prep_speedup:.2}x >= 0.85x on {available} \
             hardware thread(s); tight {pass_rule} rule enforced by the full-mode run"
        )
    } else if pass {
        format!(
            "PASS ({pass_rule}): prepare_clip speedup {prep_speedup:.2}x >= {target}x and no \
             workload >2% slower with threads on {available} hardware thread(s)"
        )
    } else {
        format!(
            "FAIL ({pass_rule}): prepare_clip {prep_speedup:.2}x (target {target}x), session \
             {sess_speedup:.2}x, no_slowdown={no_slowdown} on {available} hardware thread(s)"
        )
    };
    println!("{note}");

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("parallel".into())),
        (
            "workload".into(),
            Json::Str(format!(
                "prepare_clip + ocsvm session on {clip_name}, accidents query"
            )),
        ),
        ("fast_mode".into(), Json::Bool(fast)),
        ("rounds".into(), Json::Num(rounds as f64)),
        ("available_parallelism".into(), Json::Num(available as f64)),
        ("threads_compared".into(), Json::Num(many as f64)),
        ("prepare_ns_threads_1".into(), Json::Num(prep_1)),
        ("prepare_ns_threads_n".into(), Json::Num(prep_n)),
        ("prepare_speedup".into(), Json::Num(prep_speedup)),
        ("session_ns_threads_1".into(), Json::Num(sess_1)),
        ("session_ns_threads_n".into(), Json::Num(sess_n)),
        ("session_speedup".into(), Json::Num(sess_speedup)),
        ("target_speedup".into(), Json::Num(target)),
        ("pass_rule".into(), Json::Str(pass_rule.into())),
        ("no_slowdown_pass".into(), Json::Bool(no_slowdown)),
        ("pass".into(), Json::Bool(pass)),
        ("note".into(), Json::Str(note)),
    ]);
    let path = "BENCH_parallel.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_parallel.json");
    println!("wrote {path}");
}
