//! Measures the `tsvr-par` runtime's effect on the pipeline hot loops
//! and writes `BENCH_parallel.json`.
//!
//! The same two workloads — clip preparation (render/segment/track +
//! feature extraction) and a full OC-SVM retrieval session (Gram +
//! batch bag scoring) — are timed with the worker pool pinned to one
//! thread and to `max(4, available_parallelism)` threads. Both runs
//! share code, data, and compiler flags; by the runtime's determinism
//! invariant they also produce bit-identical results, so the timings
//! compare exactly the same computation.
//!
//! The acceptance target depends on the host. With at least four
//! hardware threads the prepare path must speed up ≥2×. With fewer, a
//! speedup is physically impossible — the runtime's sequential fallback
//! clamps the pool to the hardware — so the target becomes parity: the
//! "n-thread" run must not be slower than the 1-thread run beyond noise
//! (≥0.85×). The JSON carries `available_parallelism` and `pass_rule`
//! so a reader can tell an algorithmic regression from a starved host.
//!
//! `TSVR_BENCH_FAST=1` switches to the small tunnel clip and the
//! harness's single-batch smoke mode (used by `scripts/ci.sh`).

use tsvr_bench::harness::Bencher;
use tsvr_bench::{paper_session, PAPER_SEED};
use tsvr_core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
use tsvr_obs::json::Json;
use tsvr_sim::Scenario;

fn main() {
    let fast = std::env::var_os("TSVR_BENCH_FAST").is_some_and(|v| v != "0");
    let (scenario, clip_name) = if fast {
        (Scenario::tunnel_small(PAPER_SEED), "tunnel_small")
    } else {
        (Scenario::tunnel_paper(PAPER_SEED), "tunnel_paper (2504 frames)")
    };
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let many = available.max(4);
    eprintln!("host parallelism: {available}; comparing 1 thread vs {many} threads on {clip_name}");

    let opts = PipelineOptions::default();
    let mut b = Bencher::new("parallel");

    // Hot paths (a)+(b): per-frame segmentation and the pass-2
    // neighbor-distance loop, both inside prepare_clip.
    tsvr_par::set_threads(1);
    let prep_1 = b
        .bench("prepare_clip/threads_1", || prepare_clip(&scenario, &opts))
        .ns_per_iter;
    tsvr_par::set_threads(many);
    let prep_n = b
        .bench("prepare_clip/threads_n", || prepare_clip(&scenario, &opts))
        .ns_per_iter;

    // Hot paths (c)+(d): Gram construction and batch bag scoring,
    // inside the retrieval session over a prepared clip.
    let clip = prepare_clip(&scenario, &opts);
    let cfg = paper_session();
    let session = || {
        run_session(
            &clip,
            &EventQuery::accidents(),
            LearnerKind::paper_ocsvm(),
            cfg,
        )
    };
    tsvr_par::set_threads(1);
    let sess_1 = b.bench("session/threads_1", session).ns_per_iter;
    tsvr_par::set_threads(many);
    let sess_n = b.bench("session/threads_n", session).ns_per_iter;
    tsvr_par::set_threads(0); // restore env/auto selection

    let prep_speedup = prep_1 / prep_n;
    let sess_speedup = sess_1 / sess_n;
    // Starved hosts can't speed up; they must at least not slow down
    // (the sequential fallback makes both runs the same computation).
    let (target, pass_rule) = if available >= 4 {
        (2.0, "speedup")
    } else {
        (0.85, "parity")
    };
    let pass = prep_speedup >= target;
    println!(
        "prepare_clip: {prep_speedup:.2}x with {many} threads; session: {sess_speedup:.2}x"
    );
    let note = if pass {
        format!(
            "PASS ({pass_rule}): prepare_clip speedup {prep_speedup:.2}x >= {target}x \
             on {available} hardware thread(s)"
        )
    } else {
        format!(
            "FAIL ({pass_rule}): prepare_clip speedup {prep_speedup:.2}x < {target}x \
             on {available} hardware thread(s)"
        )
    };
    println!("{note}");

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("parallel".into())),
        (
            "workload".into(),
            Json::Str(format!(
                "prepare_clip + ocsvm session on {clip_name}, accidents query"
            )),
        ),
        ("fast_mode".into(), Json::Bool(fast)),
        ("available_parallelism".into(), Json::Num(available as f64)),
        ("threads_compared".into(), Json::Num(many as f64)),
        ("prepare_ns_threads_1".into(), Json::Num(prep_1)),
        ("prepare_ns_threads_n".into(), Json::Num(prep_n)),
        ("prepare_speedup".into(), Json::Num(prep_speedup)),
        ("session_ns_threads_1".into(), Json::Num(sess_1)),
        ("session_ns_threads_n".into(), Json::Num(sess_n)),
        ("session_speedup".into(), Json::Num(sess_speedup)),
        ("target_speedup".into(), Json::Num(target)),
        ("pass_rule".into(), Json::Str(pass_rule.into())),
        ("pass".into(), Json::Bool(pass)),
        ("note".into(), Json::Str(note)),
    ]);
    let path = "BENCH_parallel.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_parallel.json");
    println!("wrote {path}");
}
