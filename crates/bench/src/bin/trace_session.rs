//! Session trace: runs the OCSVM session round by round on one clip and
//! prints the training-set composition and the scored ranking, to debug
//! learning dynamics. Usage: `trace_session [1|2]`.

use tsvr_bench::{clip1, clip2, PAPER_SEED};
use tsvr_core::EventQuery;
use tsvr_mil::session::rank_by;
use tsvr_mil::{heuristic, Learner, OcSvmMilLearner};
use tsvr_svm::Kernel;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "2".into());
    let clip = if which == "1" {
        clip1(PAPER_SEED)
    } else {
        clip2(PAPER_SEED)
    };
    let labels = clip.labels(&EventQuery::accidents());
    let gamma = tsvr_core::pipeline::median_heuristic_gamma(&clip.bags);
    println!("median-heuristic gamma = {gamma:.3}");
    let mut learner = OcSvmMilLearner::new(Kernel::Rbf { gamma });

    let mut ranking = rank_by(&clip.bags, heuristic::bag_score);
    for round in 1..=4 {
        let feedback: Vec<(usize, bool)> =
            ranking.iter().take(20).map(|&b| (b, labels[b])).collect();
        learner.learn(&clip.bags, &feedback);
        ranking = rank_by(&clip.bags, |b| learner.score(b));
        let acc = ranking.iter().take(20).filter(|&&b| labels[b]).count() as f64 / 20.0;
        println!(
            "round {round}: h={} H={} delta={:?} SVs={:?} acc={:.0}%",
            learner.relevant_bag_count(),
            learner.training_size(),
            learner.delta().map(|d| (d * 100.0).round() / 100.0),
            learner.model().map(|m| m.support_count()),
            acc * 100.0
        );
    }

    println!("\nfinal ranking (win, label, decision):");
    for &b in ranking.iter().take(25) {
        // Show the best-scoring instance's concatenated vector too.
        let bag = &clip.bags[b];
        let best = bag
            .instances
            .iter()
            .max_by(|x, y| {
                let mx = learner
                    .model()
                    .map(|m| m.decision(&x.concat()))
                    .unwrap_or(0.0);
                let my = learner
                    .model()
                    .map(|m| m.decision(&y.concat()))
                    .unwrap_or(0.0);
                tsvr_mil::heuristic::nan_to_lowest(mx)
                    .total_cmp(&tsvr_mil::heuristic::nan_to_lowest(my))
            })
            .map(|i| {
                i.concat()
                    .iter()
                    .map(|v| (v * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            });
        println!(
            "  win {:>3} label {} score {:+.4} best {:?}",
            b,
            labels[b] as u8,
            learner.score(bag),
            best
        );
    }
    println!("  ...");
    for &b in ranking.iter().skip(25) {
        if labels[b] {
            println!(
                "  win {:>3} label 1 score {:+.4}  (relevant, buried at rank {})",
                b,
                learner.score(&clip.bags[b]),
                ranking.iter().position(|&x| x == b).unwrap()
            );
        }
    }

    if let Some(m) = learner.model() {
        println!("\ntraining vectors (support first 9 dims):");
        for (sv, c) in m.support.iter().zip(&m.coeffs) {
            let rounded: Vec<f64> = sv.iter().map(|x| (x * 100.0).round() / 100.0).collect();
            println!("  alpha={c:.3} {rounded:?}");
        }
        println!("rho = {:.4}", m.rho);
    }
}
