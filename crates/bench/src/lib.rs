//! Shared helpers for the figure-regeneration binaries and the bench
//! targets. Each binary in `src/bin/` regenerates one table or figure of
//! the paper; see DESIGN.md's experiment index. The `benches/` targets
//! run on the in-tree [`harness`].

pub mod harness;

use tsvr_core::{
    prepare_clip, run_session, ClipArtifacts, EventQuery, LearnerKind, PipelineOptions,
};
use tsvr_mil::{SessionConfig, SessionReport};
use tsvr_sim::Scenario;

/// The seed used by all headline experiments (fixed for
/// reproducibility; ablations vary it explicitly).
pub const PAPER_SEED: u64 = 2007;

/// Prepares the paper's clip 1 (tunnel, 2504 frames).
pub fn clip1(seed: u64) -> ClipArtifacts {
    prepare_clip(&Scenario::tunnel_paper(seed), &PipelineOptions::default())
}

/// Prepares the paper's clip 2 (intersection, 592 frames).
pub fn clip2(seed: u64) -> ClipArtifacts {
    prepare_clip(
        &Scenario::intersection_paper(seed),
        &PipelineOptions::default(),
    )
}

/// The paper's session protocol: top 20, four feedback rounds.
pub fn paper_session() -> SessionConfig {
    SessionConfig {
        top_n: 20,
        feedback_rounds: 4,
        ..SessionConfig::default()
    }
}

/// Runs the accident query with a learner over a prepared clip.
pub fn run_accident_session(clip: &ClipArtifacts, learner: LearnerKind) -> SessionReport {
    run_session(clip, &EventQuery::accidents(), learner, paper_session())
}

/// Formats an accuracy series like the paper's round labels.
pub fn print_accuracy_table(title: &str, reports: &[&SessionReport]) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len()));
    print!("{:<22}", "method");
    for label in ["Initial", "First", "Second", "Third", "Fourth"]
        .iter()
        .take(reports.first().map(|r| r.accuracies.len()).unwrap_or(0))
    {
        print!("{label:>9}");
    }
    println!();
    for r in reports {
        print!("{:<22}", r.learner);
        for a in &r.accuracies {
            print!("{:>8.0}%", a * 100.0);
        }
        println!();
    }
    if let Some(r) = reports.first() {
        println!(
            "(relevant windows: {}, accuracy ceiling at top-20: {:.0}%)",
            r.relevant_total,
            r.ceiling * 100.0
        );
    }
}

/// Per-clip dataset statistics (the §6.2 prose numbers).
pub struct ClipStats {
    /// Total frames.
    pub frames: usize,
    /// Confirmed tracks.
    pub tracks: usize,
    /// Windows (video sequences).
    pub windows: usize,
    /// Trajectory sequences across all windows.
    pub sequences: usize,
    /// Accident-relevant windows.
    pub relevant: usize,
}

/// Computes dataset statistics for a prepared clip.
pub fn clip_stats(clip: &ClipArtifacts) -> ClipStats {
    ClipStats {
        frames: clip.sim.frames.len(),
        tracks: clip.vision.tracks.len(),
        windows: clip.dataset.window_count(),
        sequences: clip.dataset.sequence_count(),
        relevant: clip
            .labels(&EventQuery::accidents())
            .iter()
            .filter(|&&l| l)
            .count(),
    }
}
