//! Simultaneous Partition and Class Parameter Estimation (two-class
//! variant).
//!
//! The paper's substrate \[20\] segments frames with SPCPE: starting from
//! an initial partition, it alternates between estimating per-class
//! parameters (here: the mean intensity of each class) and reassigning
//! pixels to the class whose model explains them best, until the
//! partition stabilizes. We run it on the background-subtraction
//! difference image, seeded by the threshold mask, which sharpens vehicle
//! boundaries that the fixed threshold blurs.

use crate::frame::{GrayFrame, Mask};

/// Result of a two-class SPCPE run.
#[derive(Debug, Clone)]
pub struct SpcpeResult {
    /// Final foreground partition.
    pub mask: Mask,
    /// Mean difference-intensity of the background class.
    pub bg_mean: f64,
    /// Mean difference-intensity of the foreground class.
    pub fg_mean: f64,
    /// Iterations executed until convergence (or the cap).
    pub iterations: usize,
}

/// Maximum refinement sweeps.
const MAX_ITERS: usize = 12;

/// Runs two-class SPCPE on a difference image, seeded with an initial
/// partition.
///
/// Each sweep: (1) estimate the two class means from the current
/// partition, (2) reassign every pixel to the nearer mean. Stops when a
/// sweep changes no pixels. Degenerates gracefully: if either class is
/// empty the input mask is returned unchanged.
pub fn refine(diff: &GrayFrame, initial: &Mask) -> SpcpeResult {
    assert_eq!(diff.width(), initial.width());
    assert_eq!(diff.height(), initial.height());
    let pixels = diff.pixels();
    let mut mask = initial.clone();

    let mut bg_mean = 0.0;
    let mut fg_mean = 0.0;
    let mut iterations = 0;

    for it in 0..MAX_ITERS {
        iterations = it + 1;
        // Class parameter estimation.
        let (mut bg_sum, mut bg_n, mut fg_sum, mut fg_n) = (0.0f64, 0usize, 0.0f64, 0usize);
        for (i, &p) in pixels.iter().enumerate() {
            if mask.as_slice()[i] {
                fg_sum += p as f64;
                fg_n += 1;
            } else {
                bg_sum += p as f64;
                bg_n += 1;
            }
        }
        if fg_n == 0 || bg_n == 0 {
            // Degenerate partition; nothing to refine.
            return SpcpeResult {
                mask,
                bg_mean: if bg_n > 0 { bg_sum / bg_n as f64 } else { 0.0 },
                fg_mean: if fg_n > 0 { fg_sum / fg_n as f64 } else { 0.0 },
                iterations,
            };
        }
        bg_mean = bg_sum / bg_n as f64;
        fg_mean = fg_sum / fg_n as f64;

        // Partition update.
        let mut changed = 0usize;
        for (i, &p) in pixels.iter().enumerate() {
            let v = p as f64;
            let to_fg = (v - fg_mean).abs() < (v - bg_mean).abs();
            if mask.as_slice()[i] != to_fg {
                mask.as_mut_slice()[i] = to_fg;
                changed += 1;
            }
        }
        if changed == 0 {
            break;
        }
    }

    SpcpeResult {
        mask,
        bg_mean,
        fg_mean,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Difference image: near-zero background with an 80-level block,
    /// plus a smeared boundary the threshold mask gets wrong.
    fn scene() -> (GrayFrame, Mask) {
        let mut diff = GrayFrame::black(24, 24);
        for y in 0..24 {
            for x in 0..24 {
                // Deterministic small background residue 0..6.
                diff.set(x, y, ((x * 7 + y * 13) % 7) as u8);
            }
        }
        for y in 8..16 {
            for x in 6..18 {
                diff.set(x, y, 80);
            }
        }
        // Halo of intermediate values around the block.
        for x in 5..19 {
            diff.set(x, 7, 45);
            diff.set(x, 16, 45);
        }
        // Initial mask from a crude threshold at 50: misses the halo.
        let mut mask = Mask::empty(24, 24);
        for y in 0..24 {
            for x in 0..24 {
                mask.set(x, y, diff.get(x, y) > 50);
            }
        }
        (diff, mask)
    }

    #[test]
    fn refine_recovers_halo_pixels() {
        let (diff, initial) = scene();
        let before = initial.count();
        let r = refine(&diff, &initial);
        // Halo (45) is closer to fg mean (~80) than bg mean (~3), so it
        // should join the foreground.
        assert!(r.mask.count() > before, "{} <= {before}", r.mask.count());
        assert!(r.mask.get(10, 7));
        assert!(r.mask.get(10, 16));
    }

    #[test]
    fn class_means_are_separated() {
        let (diff, initial) = scene();
        let r = refine(&diff, &initial);
        assert!(r.fg_mean > 40.0, "fg {}", r.fg_mean);
        assert!(r.bg_mean < 10.0, "bg {}", r.bg_mean);
    }

    #[test]
    fn converges_and_is_idempotent() {
        let (diff, initial) = scene();
        let r1 = refine(&diff, &initial);
        assert!(r1.iterations <= MAX_ITERS);
        let r2 = refine(&diff, &r1.mask);
        assert_eq!(r1.mask, r2.mask, "second refinement changed the mask");
    }

    #[test]
    fn empty_initial_mask_is_returned_unchanged() {
        let diff = GrayFrame::filled(8, 8, 5);
        let m = Mask::empty(8, 8);
        let r = refine(&diff, &m);
        assert_eq!(r.mask.count(), 0);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn full_initial_mask_is_returned_unchanged() {
        let diff = GrayFrame::filled(8, 8, 200);
        let mut m = Mask::empty(8, 8);
        for i in 0..64 {
            m.as_mut_slice()[i] = true;
        }
        let r = refine(&diff, &m);
        assert_eq!(r.mask.count(), 64);
    }

    #[test]
    fn background_noise_does_not_join_foreground() {
        let (diff, initial) = scene();
        let r = refine(&diff, &initial);
        // Distant background pixels stay background.
        assert!(!r.mask.get(1, 1));
        assert!(!r.mask.get(22, 22));
    }
}
