//! Synthetic frame rasterization.
//!
//! Stands in for the physical camera: draws the scene background (road
//! surface, lane markings, tunnel walls) once, then composites each
//! simulated vehicle as an oriented rectangle with per-vehicle shading,
//! and finally applies cheap deterministic sensor noise. The goal is not
//! photorealism but a pixel stream whose *segmentation problem* matches
//! the paper's: bright-ish vehicle bodies over a darker static
//! background, with noise that perturbs extracted centroids by a pixel
//! or so.

use crate::frame::GrayFrame;
use tsvr_sim::road::{TUNNEL_WALL_BOTTOM, TUNNEL_WALL_TOP};
use tsvr_sim::{ScenarioKind, Vec2, VehicleClass, VehicleObs};

/// Deterministic 2-D hash noise in `[-1, 1)`, cheap enough to run on
/// every pixel of every frame.
#[inline]
fn hash_noise(x: u32, y: u32, salt: u32) -> f64 {
    let mut h = x
        .wrapping_mul(0x9E3779B1)
        .wrapping_add(y.wrapping_mul(0x85EBCA77))
        .wrapping_add(salt.wrapping_mul(0xC2B2AE3D));
    h ^= h >> 16;
    h = h.wrapping_mul(0x7FEB352D);
    h ^= h >> 15;
    h = h.wrapping_mul(0x846CA68B);
    h ^= h >> 16;
    (h as f64 / u32::MAX as f64) * 2.0 - 1.0
}

/// Base body intensity per vehicle class. Classes differ slightly so the
/// PCA classifier has an intensity cue in addition to the size cue.
fn class_intensity(class: VehicleClass) -> f64 {
    match class {
        VehicleClass::Car => 168.0,
        VehicleClass::Suv => 188.0,
        VehicleClass::Pickup => 148.0,
    }
}

/// Renders scene backgrounds and vehicle composites.
#[derive(Debug, Clone)]
pub struct Renderer {
    background: GrayFrame,
    /// Sensor noise amplitude in gray levels.
    pub noise_amp: f64,
    /// Shadow flicker amplitude in px. Tunnels (artificial lighting,
    /// headlight reflections off walls) flicker far more than open-air
    /// daylight scenes.
    pub shadow_flicker: f64,
}

impl Renderer {
    /// Builds a renderer for a scenario layout at the given image size.
    pub fn new(kind: ScenarioKind, width: u32, height: u32) -> Renderer {
        let background = match kind {
            ScenarioKind::Tunnel => tunnel_background(width, height),
            ScenarioKind::Intersection => intersection_background(width, height),
        };
        Renderer {
            background,
            noise_amp: 3.0,
            shadow_flicker: match kind {
                ScenarioKind::Tunnel => 12.0,
                ScenarioKind::Intersection => 6.0,
            },
        }
    }

    /// The clean (noise-free) background plate.
    pub fn background(&self) -> &GrayFrame {
        &self.background
    }

    /// Renders one frame: background + vehicles + sensor noise.
    ///
    /// `frame_index` salts the noise so consecutive frames decorrelate.
    pub fn render(&self, vehicles: &[VehicleObs], frame_index: u32) -> GrayFrame {
        let mut f = self.background.clone();
        for v in vehicles {
            draw_shadow(&mut f, v, frame_index, self.shadow_flicker);
        }
        for v in vehicles {
            draw_vehicle(&mut f, v);
        }
        // Sensor noise.
        let w = f.width();
        for y in 0..f.height() {
            for x in 0..w {
                let n = hash_noise(x, y, frame_index.wrapping_mul(2654435761)) * self.noise_amp;
                let p = f.get(x, y) as f64 + n;
                f.set(x, y, p.clamp(0.0, 255.0) as u8);
            }
        }
        f
    }
}

/// Draws the vehicle's cast shadow: a darker quadrilateral offset to the
/// vehicle's lower-right (fixed scene lighting), whose reach flickers
/// frame to frame with the lighting noise. Shadows are the classic
/// failure mode of background subtraction — they move with the vehicle,
/// exceed the difference threshold, and smear the segmented blob, which
/// perturbs extracted centroids by a few pixels in a time-correlated
/// way. The paper's real footage has them; the reproduction needs them
/// so the initial heuristic faces realistic feature noise.
fn draw_shadow(f: &mut GrayFrame, v: &VehicleObs, frame_index: u32, flicker: f64) {
    let (sin, cos) = v.heading.sin_cos();
    let axis = Vec2::new(cos, sin);
    let perp = Vec2::new(-sin, cos);
    // Flickering reach: 2..(2+flicker) px depending on frame and vehicle.
    let reach = 2.0 + flicker * (0.5 + 0.5 * hash_noise(v.id as u32, frame_index, 91));
    let center = v.center + Vec2::new(0.6, 1.0).normalized() * (v.half_wid + reach * 0.5);
    let half_len = v.half_len * 0.95;
    let half_wid = reach * 0.5 + 1.5;

    let r = half_len.hypot(half_wid).ceil();
    let x0 = (center.x - r).floor() as i64;
    let x1 = (center.x + r).ceil() as i64;
    let y0 = (center.y - r).floor() as i64;
    let y1 = (center.y + r).ceil() as i64;
    for y in y0..=y1 {
        for x in x0..=x1 {
            if x < 0 || y < 0 || x as u32 >= f.width() || y as u32 >= f.height() {
                continue;
            }
            let p = Vec2::new(x as f64, y as f64) - center;
            if p.dot(axis).abs() <= half_len && p.dot(perp).abs() <= half_wid {
                let cur = f.get(x as u32, y as u32) as f64;
                f.set(x as u32, y as u32, (cur - 34.0).clamp(0.0, 255.0) as u8);
            }
        }
    }
}

/// Draws one vehicle as an oriented rectangle with simple shading: a
/// brighter roof block in the middle and a per-vehicle intensity offset
/// derived from its id.
fn draw_vehicle(f: &mut GrayFrame, v: &VehicleObs) {
    let base = class_intensity(v.class) + ((v.id.wrapping_mul(2654435761) % 31) as f64 - 15.0);
    let (sin, cos) = v.heading.sin_cos();
    let axis = Vec2::new(cos, sin);
    let perp = Vec2::new(-sin, cos);

    // Bounding box of the rotated rectangle.
    let r = v.half_len.hypot(v.half_wid).ceil();
    let x0 = (v.center.x - r).floor() as i64;
    let x1 = (v.center.x + r).ceil() as i64;
    let y0 = (v.center.y - r).floor() as i64;
    let y1 = (v.center.y + r).ceil() as i64;

    for y in y0..=y1 {
        for x in x0..=x1 {
            let p = Vec2::new(x as f64, y as f64) - v.center;
            let u = p.dot(axis);
            let w = p.dot(perp);
            if u.abs() <= v.half_len && w.abs() <= v.half_wid {
                // Roof highlight over the middle half of the body.
                let roof = if u.abs() < v.half_len * 0.5 && w.abs() < v.half_wid * 0.6 {
                    18.0
                } else {
                    0.0
                };
                // Body texture.
                let tex = hash_noise(x as u32 & 0xffff, y as u32 & 0xffff, v.id as u32) * 5.0;
                let val = (base + roof + tex).clamp(0.0, 255.0);
                f.set_clipped(x, y, val as u8);
            }
        }
    }
}

/// Tunnel scene: dark walls at the top/bottom, road in the middle with a
/// dashed center line.
fn tunnel_background(width: u32, height: u32) -> GrayFrame {
    let mut f = GrayFrame::black(width, height);
    for y in 0..height {
        for x in 0..width {
            let yy = y as f64;
            let base = if !(TUNNEL_WALL_TOP..=TUNNEL_WALL_BOTTOM).contains(&yy) {
                // Tunnel wall: dark with slight vertical gradient.
                40.0 + (yy / height as f64) * 10.0
            } else {
                // Road surface.
                92.0
            };
            let tex = hash_noise(x, y, 17) * 4.0;
            let mut v = base + tex;
            // Dashed lane divider between the two lanes (y = 120).
            if (118..122).contains(&y) && (x / 16) % 2 == 0 {
                v = 190.0;
            }
            f.set(x, y, v.clamp(0.0, 255.0) as u8);
        }
    }
    f
}

/// Intersection scene: two crossing roads over grass, with stop lines.
fn intersection_background(width: u32, height: u32) -> GrayFrame {
    let mut f = GrayFrame::black(width, height);
    let cx = width as f64 / 2.0;
    let cy = height as f64 / 2.0;
    let road_half = 26.0;
    for y in 0..height {
        for x in 0..width {
            let xx = x as f64;
            let yy = y as f64;
            let on_ew = (yy - cy).abs() <= road_half;
            let on_ns = (xx - cx).abs() <= road_half;
            let base = if on_ew || on_ns {
                92.0
            } else {
                // Grass / sidewalk.
                60.0
            };
            let tex = hash_noise(x, y, 23) * 4.0;
            let mut v = base + tex;
            // Center lines.
            if on_ew && (yy - cy).abs() < 1.5 && !on_ns {
                v = 185.0;
            }
            if on_ns && (xx - cx).abs() < 1.5 && !on_ew {
                v = 185.0;
            }
            f.set(x, y, v.clamp(0.0, 255.0) as u8);
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(x: f64, y: f64, heading: f64) -> VehicleObs {
        VehicleObs {
            id: 5,
            class: VehicleClass::Car,
            center: Vec2::new(x, y),
            heading,
            half_len: 11.0,
            half_wid: 5.0,
            speed: 3.0,
        }
    }

    #[test]
    fn backgrounds_have_expected_structure() {
        let t = tunnel_background(320, 240);
        // Wall darker than road.
        assert!(t.get(160, 20) < t.get(160, 120) || t.get(160, 20) < 80);
        let i = intersection_background(320, 240);
        // Road brighter than grass.
        assert!(i.get(160, 120) > i.get(20, 20));
    }

    #[test]
    fn vehicle_brighter_than_road() {
        let r = Renderer::new(ScenarioKind::Tunnel, 320, 240);
        let f = r.render(&[obs(160.0, 104.0, 0.0)], 0);
        let bg = r.render(&[], 0);
        assert!(f.get(160, 104) as i32 - bg.get(160, 104) as i32 > 40);
    }

    #[test]
    fn render_is_deterministic() {
        let r = Renderer::new(ScenarioKind::Tunnel, 320, 240);
        let a = r.render(&[obs(100.0, 136.0, 0.1)], 7);
        let b = r.render(&[obs(100.0, 136.0, 0.1)], 7);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_varies_with_frame_index() {
        let r = Renderer::new(ScenarioKind::Tunnel, 320, 240);
        let a = r.render(&[], 1);
        let b = r.render(&[], 2);
        assert_ne!(a, b);
        // But only by noise amplitude.
        let diff = a.abs_diff(&b);
        let max = diff.pixels().iter().cloned().max().unwrap();
        assert!(max as f64 <= 2.0 * r.noise_amp + 1.0, "max diff {max}");
    }

    #[test]
    fn rotated_vehicle_covers_rotated_extent() {
        let r = Renderer::new(ScenarioKind::Intersection, 320, 240);
        // Vertical heading: the long axis should now span y.
        let f = r.render(&[obs(160.0, 120.0, std::f64::consts::FRAC_PI_2)], 0);
        let bg = r.background();
        let bright = |x: u32, y: u32| f.get(x, y) as i32 - bg.get(x, y) as i32 > 30;
        assert!(bright(160, 129)); // within half_len along y
        assert!(!bright(170, 120)); // beyond half_wid along x
    }

    #[test]
    fn vehicle_clipped_at_image_edge_does_not_panic() {
        let r = Renderer::new(ScenarioKind::Tunnel, 320, 240);
        let _ = r.render(&[obs(2.0, 104.0, 0.0), obs(318.0, 136.0, 0.0)], 0);
    }

    #[test]
    fn classes_have_distinct_intensities() {
        let i_car = class_intensity(VehicleClass::Car);
        let i_suv = class_intensity(VehicleClass::Suv);
        let i_pickup = class_intensity(VehicleClass::Pickup);
        assert!(i_suv > i_car && i_car > i_pickup);
    }

    #[test]
    fn hash_noise_bounded_and_deterministic() {
        for x in 0..50 {
            for y in 0..50 {
                let n = hash_noise(x, y, 3);
                assert!((-1.0..1.0).contains(&n));
                assert_eq!(n, hash_noise(x, y, 3));
            }
        }
        assert_ne!(hash_noise(1, 2, 3), hash_noise(2, 1, 3));
    }
}
