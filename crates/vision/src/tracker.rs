//! Constant-velocity multi-object tracking.
//!
//! The paper's substrate \[20\] "has the ability to track moving vehicle
//! objects (segments) within successive video frames" using segment
//! centroids. This tracker reproduces that capability: per frame it
//! predicts each live track forward with a smoothed velocity, associates
//! predictions to detected blobs by minimum-cost assignment with a
//! distance gate, coasts briefly through missed detections (occlusions,
//! merges), and emits finished trajectories as centroid series.

use crate::blob::Blob;
use crate::hungarian;
use tsvr_sim::{Aabb, Vec2};

/// Tracker tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// Maximum association distance between a predicted track position
    /// and a detection, px.
    pub gate_distance: f64,
    /// Consecutive missed frames before a track is terminated.
    pub max_misses: u32,
    /// Detections needed before a track counts as confirmed.
    pub confirm_hits: u32,
    /// Minimum number of points for a finished track to be reported.
    pub min_track_len: usize,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            gate_distance: 24.0,
            max_misses: 6,
            confirm_hits: 3,
            min_track_len: 6,
        }
    }
}

/// One sample of a finished track.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackPoint {
    /// Frame index.
    pub frame: u32,
    /// Tracked centroid (detected, or predicted when `coasted`).
    pub centroid: Vec2,
    /// MBR of the associated blob (previous MBR when coasted).
    pub mbr: Aabb,
    /// True when this sample was coasted through a missed detection.
    pub coasted: bool,
}

/// Running means of blob shape features, used by the PCA classifier.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlobStats {
    /// Mean MBR width, px.
    pub width: f64,
    /// Mean MBR height, px.
    pub height: f64,
    /// Mean pixel area.
    pub area: f64,
    /// Mean fill ratio (area / MBR area).
    pub fill: f64,
    /// Mean intensity.
    pub intensity: f64,
}

/// A finished vehicle trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Tracker-assigned id (not the simulator id).
    pub id: u64,
    /// Centroid series, one point per frame from birth to termination.
    pub points: Vec<TrackPoint>,
    /// Mean blob shape features over the detected (non-coasted) points.
    pub stats: BlobStats,
}

impl Track {
    /// First frame of the track.
    pub fn start_frame(&self) -> u32 {
        self.points.first().map(|p| p.frame).unwrap_or(0)
    }

    /// Last frame of the track.
    pub fn end_frame(&self) -> u32 {
        self.points.last().map(|p| p.frame).unwrap_or(0)
    }

    /// Centroid at an absolute frame index, if the track covers it.
    pub fn centroid_at(&self, frame: u32) -> Option<Vec2> {
        let start = self.start_frame();
        if frame < start {
            return None;
        }
        self.points.get((frame - start) as usize).map(|p| {
            debug_assert_eq!(p.frame, frame);
            p.centroid
        })
    }
}

#[derive(Debug)]
struct ActiveTrack {
    id: u64,
    points: Vec<TrackPoint>,
    velocity: Vec2,
    hits: u32,
    misses: u32,
    stat_sums: BlobStats,
    stat_n: usize,
}

impl ActiveTrack {
    fn predict(&self) -> Vec2 {
        let last = self.points.last().expect("track has points");
        last.centroid + self.velocity
    }

    fn into_track(mut self, cfg: &TrackerConfig) -> Option<Track> {
        // Trim trailing coasted points: they are extrapolation, not
        // observation.
        while self.points.last().map(|p| p.coasted).unwrap_or(false) {
            self.points.pop();
        }
        if self.hits < cfg.confirm_hits || self.points.len() < cfg.min_track_len {
            return None;
        }
        let n = self.stat_n.max(1) as f64;
        Some(Track {
            id: self.id,
            points: self.points,
            stats: BlobStats {
                width: self.stat_sums.width / n,
                height: self.stat_sums.height / n,
                area: self.stat_sums.area / n,
                fill: self.stat_sums.fill / n,
                intensity: self.stat_sums.intensity / n,
            },
        })
    }
}

/// The multi-object tracker. Feed blobs frame by frame with
/// [`Tracker::step`], then call [`Tracker::finish`].
pub struct Tracker {
    cfg: TrackerConfig,
    next_id: u64,
    active: Vec<ActiveTrack>,
    finished: Vec<Track>,
}

impl Tracker {
    /// Creates a tracker.
    pub fn new(cfg: TrackerConfig) -> Tracker {
        Tracker {
            cfg,
            next_id: 1,
            active: Vec::new(),
            finished: Vec::new(),
        }
    }

    /// Number of currently active (live) tracks.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Processes one frame of detections.
    pub fn step(&mut self, frame: u32, blobs: &[Blob]) {
        let n_tracks = self.active.len();
        let n_blobs = blobs.len();
        let gate = self.cfg.gate_distance;

        // Assignment: rows = tracks, columns = blobs then one dummy
        // column per track (a miss costs exactly the gate distance, so
        // any real match within the gate is preferred).
        let mut matched_blob: Vec<Option<usize>> = vec![None; n_tracks];
        let mut blob_taken = vec![false; n_blobs];
        if n_tracks > 0 {
            let _span = tsvr_obs::span!("vision.track.assign");
            let cost: Vec<Vec<f64>> = self
                .active
                .iter()
                .enumerate()
                .map(|(t, tr)| {
                    let pred = tr.predict();
                    let mut row: Vec<f64> = blobs
                        .iter()
                        .map(|b| {
                            let d = pred.dist(b.centroid);
                            if d <= gate {
                                d
                            } else {
                                1e9 + d // softly ordered infeasible region
                            }
                        })
                        .collect();
                    // Dummy (miss) columns.
                    for dummy in 0..n_tracks {
                        row.push(if dummy == t { gate } else { 2e9 });
                    }
                    row
                })
                .collect();
            let assignment = hungarian::assign(&cost);
            for (t, &col) in assignment.iter().enumerate() {
                if col < n_blobs && cost[t][col] < 1e9 {
                    matched_blob[t] = Some(col);
                    blob_taken[col] = true;
                }
            }
        }

        // Update matched / coasted tracks.
        for (t, tr) in self.active.iter_mut().enumerate() {
            match matched_blob[t] {
                Some(b) => {
                    let blob = &blobs[b];
                    let last = tr.points.last().unwrap().centroid;
                    let measured_v = blob.centroid - last;
                    tr.velocity = tr.velocity * 0.6 + measured_v * 0.4;
                    tr.points.push(TrackPoint {
                        frame,
                        centroid: blob.centroid,
                        mbr: blob.mbr,
                        coasted: false,
                    });
                    tr.hits += 1;
                    tr.misses = 0;
                    tr.stat_sums.width += blob.width();
                    tr.stat_sums.height += blob.height();
                    tr.stat_sums.area += blob.area as f64;
                    tr.stat_sums.fill += blob.fill_ratio();
                    tr.stat_sums.intensity += blob.mean_intensity;
                    tr.stat_n += 1;
                }
                None => {
                    let pred = tr.predict();
                    let mbr = tr.points.last().unwrap().mbr;
                    tr.points.push(TrackPoint {
                        frame,
                        centroid: pred,
                        mbr,
                        coasted: true,
                    });
                    tr.misses += 1;
                }
            }
        }

        // Terminate stale tracks.
        let cfg = self.cfg;
        let mut still_active = Vec::with_capacity(self.active.len());
        for tr in self.active.drain(..) {
            if tr.misses > cfg.max_misses {
                if let Some(t) = tr.into_track(&cfg) {
                    self.finished.push(t);
                }
            } else {
                still_active.push(tr);
            }
        }
        self.active = still_active;

        // Births from unmatched blobs.
        for (b, blob) in blobs.iter().enumerate() {
            if blob_taken[b] {
                continue;
            }
            self.active.push(ActiveTrack {
                id: self.next_id,
                points: vec![TrackPoint {
                    frame,
                    centroid: blob.centroid,
                    mbr: blob.mbr,
                    coasted: false,
                }],
                velocity: Vec2::ZERO,
                hits: 1,
                misses: 0,
                stat_sums: BlobStats {
                    width: blob.width(),
                    height: blob.height(),
                    area: blob.area as f64,
                    fill: blob.fill_ratio(),
                    intensity: blob.mean_intensity,
                },
                stat_n: 1,
            });
            self.next_id += 1;
        }
    }

    /// Terminates all tracks and returns every confirmed trajectory,
    /// ordered by start frame.
    pub fn finish(mut self) -> Vec<Track> {
        let cfg = self.cfg;
        for tr in self.active.drain(..) {
            if let Some(t) = tr.into_track(&cfg) {
                self.finished.push(t);
            }
        }
        self.finished.sort_by_key(|t| (t.start_frame(), t.id));
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_at(x: f64, y: f64) -> Blob {
        Blob {
            area: 200,
            mbr: Aabb::from_corners(Vec2::new(x - 10.0, y - 5.0), Vec2::new(x + 10.0, y + 5.0)),
            centroid: Vec2::new(x, y),
            mean_intensity: 170.0,
        }
    }

    fn default_tracker() -> Tracker {
        Tracker::new(TrackerConfig::default())
    }

    #[test]
    fn single_moving_object_yields_single_track() {
        let mut tk = default_tracker();
        for f in 0..30u32 {
            tk.step(f, &[blob_at(10.0 + 4.0 * f as f64, 100.0)]);
        }
        let tracks = tk.finish();
        assert_eq!(tracks.len(), 1);
        let t = &tracks[0];
        assert_eq!(t.points.len(), 30);
        assert_eq!(t.start_frame(), 0);
        assert_eq!(t.end_frame(), 29);
        assert!(t.points.iter().all(|p| !p.coasted));
    }

    #[test]
    fn two_crossing_objects_stay_separate() {
        let mut tk = default_tracker();
        for f in 0..40u32 {
            let a = blob_at(10.0 + 4.0 * f as f64, 80.0);
            let b = blob_at(170.0 - 4.0 * f as f64, 120.0);
            tk.step(f, &[a, b]);
        }
        let tracks = tk.finish();
        assert_eq!(tracks.len(), 2);
        for t in &tracks {
            assert_eq!(t.points.len(), 40);
            // Each track's y stays near its own lane.
            let ys: Vec<f64> = t.points.iter().map(|p| p.centroid.y).collect();
            let spread = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - ys.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(spread < 5.0, "track switched lanes: spread {spread}");
        }
    }

    #[test]
    fn coasts_through_short_occlusion() {
        let mut tk = default_tracker();
        for f in 0..30u32 {
            if (12..15).contains(&f) {
                tk.step(f, &[]); // occluded
            } else {
                tk.step(f, &[blob_at(10.0 + 4.0 * f as f64, 100.0)]);
            }
        }
        let tracks = tk.finish();
        assert_eq!(tracks.len(), 1, "track broke during occlusion");
        let t = &tracks[0];
        assert_eq!(t.points.len(), 30);
        assert_eq!(t.points.iter().filter(|p| p.coasted).count(), 3);
        // Coasted positions roughly continue the motion.
        let p13 = t.centroid_at(13).unwrap();
        assert!((p13.x - (10.0 + 4.0 * 13.0)).abs() < 4.0);
    }

    #[test]
    fn long_gap_terminates_track() {
        let mut tk = default_tracker();
        for f in 0..10u32 {
            tk.step(f, &[blob_at(10.0 + 4.0 * f as f64, 100.0)]);
        }
        for f in 10..30u32 {
            tk.step(f, &[]);
        }
        for f in 30..45u32 {
            tk.step(f, &[blob_at(300.0, 100.0)]);
        }
        let tracks = tk.finish();
        assert_eq!(tracks.len(), 2, "gap should split the trajectory");
        // No trailing coasted points on the first track.
        assert!(!tracks[0].points.last().unwrap().coasted);
    }

    #[test]
    fn short_noise_tracks_are_suppressed() {
        let mut tk = default_tracker();
        tk.step(0, &[blob_at(50.0, 50.0)]);
        tk.step(1, &[blob_at(52.0, 50.0)]);
        for f in 2..20u32 {
            tk.step(f, &[]);
        }
        let tracks = tk.finish();
        assert!(tracks.is_empty(), "2-frame flicker became a track");
    }

    #[test]
    fn new_object_does_not_steal_existing_track() {
        let mut tk = default_tracker();
        for f in 0..10u32 {
            tk.step(f, &[blob_at(10.0 + 4.0 * f as f64, 100.0)]);
        }
        // Second object appears far away.
        for f in 10..30u32 {
            tk.step(
                f,
                &[
                    blob_at(10.0 + 4.0 * f as f64, 100.0),
                    blob_at(5.0 + 3.0 * (f - 10) as f64, 200.0),
                ],
            );
        }
        let tracks = tk.finish();
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].start_frame(), 0);
        assert_eq!(tracks[1].start_frame(), 10);
    }

    #[test]
    fn stats_accumulate_means() {
        let mut tk = default_tracker();
        for f in 0..10u32 {
            tk.step(f, &[blob_at(10.0 + 4.0 * f as f64, 100.0)]);
        }
        let tracks = tk.finish();
        let s = tracks[0].stats;
        assert!((s.width - 21.0).abs() < 1e-9);
        assert!((s.height - 11.0).abs() < 1e-9);
        assert!((s.area - 200.0).abs() < 1e-9);
        assert!((s.intensity - 170.0).abs() < 1e-9);
    }

    #[test]
    fn centroid_at_out_of_range_is_none() {
        let mut tk = default_tracker();
        for f in 5..20u32 {
            tk.step(f, &[blob_at(10.0 + 4.0 * f as f64, 100.0)]);
        }
        let tracks = tk.finish();
        let t = &tracks[0];
        assert!(t.centroid_at(4).is_none());
        assert!(t.centroid_at(19).is_some());
        assert!(t.centroid_at(20).is_none());
    }

    #[test]
    fn stationary_object_is_tracked() {
        let mut tk = default_tracker();
        for f in 0..20u32 {
            tk.step(f, &[blob_at(100.0, 100.0)]);
        }
        let tracks = tk.finish();
        assert_eq!(tracks.len(), 1);
        assert!(tracks[0]
            .points
            .iter()
            .all(|p| p.centroid.dist(Vec2::new(100.0, 100.0)) < 1.0));
    }
}
