//! # tsvr-vision
//!
//! Synthetic video generation and the vehicle segmentation / tracking
//! stack the paper builds on (§3.1, citing \[20\] and \[13\]).
//!
//! The authors' substrate identifies vehicles with the SPCPE algorithm
//! enhanced by background learning and subtraction, tracks them across
//! frames, and classifies them with PCA. Those components are rebuilt
//! here against synthetic frames rasterized from `tsvr-sim`
//! observations, so the downstream learning pipeline consumes *detected
//! and tracked* centroids — including segmentation jitter, missed
//! detections and occlusion merges — rather than simulator ground truth.
//!
//! Modules:
//!
//! * [`frame`] — 8-bit grayscale frame buffer;
//! * [`render`] — background synthesis + vehicle rasterization + sensor
//!   noise;
//! * [`background`] — running-average background learning and
//!   subtraction;
//! * [`spcpe`] — simultaneous partition and class parameter estimation
//!   (two-class variant) used to refine the foreground mask;
//! * [`blob`] — connected-component labeling, minimal bounding
//!   rectangles and centroids (paper Fig. 1);
//! * [`hungarian`] — optimal assignment for detection-to-track
//!   association;
//! * [`tracker`] — constant-velocity multi-object tracker;
//! * [`pca`] — PCA-based vehicle classification \[13\];
//! * [`pipeline`] — end-to-end `sim frames → tracks` driver;
//! * [`quality`] — MOTA/MOTP-style evaluation of the tracker against
//!   simulator ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod blob;
pub mod frame;
pub mod hungarian;
pub mod pca;
pub mod pipeline;
pub mod quality;
pub mod render;
pub mod spcpe;
pub mod tracker;

pub use blob::Blob;
pub use frame::GrayFrame;
pub use pipeline::{PipelineConfig, VisionOutput};
pub use tracker::{Track, TrackPoint, Tracker};
