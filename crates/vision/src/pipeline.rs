//! End-to-end vision pipeline: simulator observations → synthetic frames
//! → background subtraction → SPCPE refinement → blobs → tracks.
//!
//! This is the programmatic equivalent of the paper's "semantic object
//! tracking" stage (§3): everything downstream (trajectory modeling,
//! event features, MIL retrieval) consumes the [`Track`]s produced here.

use crate::background::BackgroundModel;
use crate::blob::{extract_blobs, Blob};
use crate::frame::{GrayFrame, Mask};
use crate::render::Renderer;
use crate::spcpe;
use crate::tracker::{Tracker, TrackerConfig};
use tsvr_sim::world::SimOutput;
use tsvr_sim::ScenarioKind;

pub use crate::tracker::{Track, TrackPoint};

/// Pipeline tuning parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Minimum blob area in pixels (smaller components are noise).
    pub min_blob_area: usize,
    /// Tracker parameters.
    pub tracker: TrackerConfig,
    /// Empty-scene frames used to warm up the background model before
    /// the clip starts (the paper's "background learning" phase).
    pub warmup_frames: u32,
    /// Whether to refine the threshold mask with SPCPE.
    pub use_spcpe: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            min_blob_area: 60,
            tracker: TrackerConfig::default(),
            warmup_frames: 30,
            use_spcpe: true,
        }
    }
}

/// Output of a pipeline run.
#[derive(Debug, Clone)]
pub struct VisionOutput {
    /// All confirmed vehicle trajectories.
    pub tracks: Vec<Track>,
    /// Image width, px.
    pub width: u32,
    /// Image height, px.
    pub height: u32,
    /// Number of blobs detected at each frame (diagnostics).
    pub detections_per_frame: Vec<usize>,
}

impl VisionOutput {
    /// Tracks alive (covering) the given frame.
    pub fn tracks_at(&self, frame: u32) -> impl Iterator<Item = &Track> {
        self.tracks
            .iter()
            .filter(move |t| t.start_frame() <= frame && frame <= t.end_frame())
    }
}

/// Runs the full pipeline over a simulated clip.
pub fn process(sim: &SimOutput, kind: ScenarioKind, cfg: &PipelineConfig) -> VisionOutput {
    let renderer = Renderer::new(kind, sim.width, sim.height);

    // Background warm-up on empty frames (distinct noise salts from the
    // clip itself).
    let mut bg = BackgroundModel::from_frame(&renderer.render(&[], u32::MAX));
    for i in 0..cfg.warmup_frames {
        let f = renderer.render(&[], u32::MAX - 1 - i);
        bg.learn(std::slice::from_ref(&f));
    }

    let mut tracker = Tracker::new(cfg.tracker);
    let mut detections_per_frame = Vec::with_capacity(sim.frames.len());

    // Frames are processed in bounded chunks so the pure per-frame
    // stages (rendering, SPCPE refinement, blob extraction) can fan out
    // on the [`tsvr_par`] runtime, while the two order-sensitive stages
    // — the running background update and the tracker — consume frames
    // in exact clip order. Every stage computes the same values as the
    // plain sequential loop did, so the output is bit-identical
    // regardless of the thread count; the chunk bound keeps at most a
    // few dozen decoded frames in flight.
    let chunk_len = tsvr_par::current_threads().max(1) * 4;
    for obs_chunk in sim.frames.chunks(chunk_len) {
        // Parallel, pure: synthesize the chunk's frames.
        let frames: Vec<GrayFrame> =
            tsvr_par::par_map(obs_chunk, |_, obs| renderer.render(&obs.vehicles, obs.frame));

        // Sequential, stateful: background estimate + model update in
        // clip order (each update feeds the next frame's estimate).
        let masks: Vec<(Option<GrayFrame>, Mask)> = frames
            .iter()
            .map(|frame| {
                let bg_est = cfg.use_spcpe.then(|| bg.background());
                (bg_est, bg.subtract_and_update(frame))
            })
            .collect();

        // Parallel, pure: SPCPE refinement and blob extraction.
        let chunk_blobs: Vec<Vec<Blob>> = tsvr_par::par_map_index(frames.len(), |i| {
            let _span = tsvr_obs::span!("vision.segment");
            let frame = &frames[i];
            let (bg_est, mask0) = &masks[i];
            let mask = match bg_est {
                Some(bg_est) => {
                    let diff = frame.abs_diff(bg_est);
                    spcpe::refine(&diff, mask0).mask.majority_filter(4)
                }
                None => mask0.clone(),
            };
            extract_blobs(&mask, cfg.min_blob_area, Some(frame))
        });

        // Sequential, stateful: feed the tracker in clip order.
        for (obs, blobs) in obs_chunk.iter().zip(&chunk_blobs) {
            tsvr_obs::counter!("vision.frames").incr();
            tsvr_obs::histogram!("vision.blobs_per_frame").record(blobs.len() as u64);
            detections_per_frame.push(blobs.len());
            tracker.step(obs.frame, blobs);
        }
    }

    VisionOutput {
        tracks: tracker.finish(),
        width: sim.width,
        height: sim.height,
        detections_per_frame,
    }
}

/// Matches each track to the simulator vehicle it follows, by majority
/// vote over per-frame nearest ground-truth centers within `max_dist`.
/// Returns `None` for tracks that never matched (pure noise).
pub fn match_ground_truth(tracks: &[Track], sim: &SimOutput, max_dist: f64) -> Vec<Option<u64>> {
    tracks
        .iter()
        .map(|t| {
            let mut votes: Vec<(u64, usize)> = Vec::new();
            for p in t.points.iter().filter(|p| !p.coasted) {
                let Some(frame) = sim.frames.get(p.frame as usize) else {
                    continue;
                };
                let nearest = frame
                    .vehicles
                    .iter()
                    .map(|v| (v.id, v.center.dist(p.centroid)))
                    .filter(|&(_, d)| d <= max_dist)
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                if let Some((id, _)) = nearest {
                    match votes.iter_mut().find(|(v, _)| *v == id) {
                        Some((_, n)) => *n += 1,
                        None => votes.push((id, 1)),
                    }
                }
            }
            votes
                .into_iter()
                .max_by_key(|&(_, n)| n)
                .filter(|&(_, n)| n * 2 >= t.points.len())
                .map(|(id, _)| id)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvr_sim::{Scenario, World};

    fn small_run() -> (SimOutput, VisionOutput) {
        let scenario = Scenario::tunnel_small(21);
        let sim = World::run(scenario);
        let out = process(&sim, ScenarioKind::Tunnel, &PipelineConfig::default());
        (sim, out)
    }

    #[test]
    fn pipeline_finds_tracks() {
        let (sim, out) = small_run();
        assert!(!out.tracks.is_empty(), "no tracks found");
        assert_eq!(out.detections_per_frame.len(), sim.frames.len());
        // Roughly as many tracks as distinct vehicles seen (allowing
        // fragmentation).
        let mut gt_ids: Vec<u64> = sim
            .frames
            .iter()
            .flat_map(|f| f.vehicles.iter().map(|v| v.id))
            .collect();
        gt_ids.sort_unstable();
        gt_ids.dedup();
        assert!(
            out.tracks.len() <= gt_ids.len() * 2,
            "{} tracks for {} vehicles",
            out.tracks.len(),
            gt_ids.len()
        );
        assert!(
            out.tracks.len() * 2 >= gt_ids.len(),
            "{} tracks for {} vehicles",
            out.tracks.len(),
            gt_ids.len()
        );
    }

    #[test]
    fn tracked_centroids_are_accurate() {
        let (sim, out) = small_run();
        let matches = match_ground_truth(&out.tracks, &sim, 15.0);
        let matched = matches.iter().filter(|m| m.is_some()).count();
        assert!(
            matched * 10 >= out.tracks.len() * 8,
            "only {matched}/{} tracks matched ground truth",
            out.tracks.len()
        );
        // Average error of matched, detected points should be small.
        let mut err_sum = 0.0;
        let mut err_n = 0usize;
        for (t, m) in out.tracks.iter().zip(&matches) {
            let Some(id) = m else { continue };
            for p in t.points.iter().filter(|p| !p.coasted) {
                if let Some(v) = sim.frames[p.frame as usize]
                    .vehicles
                    .iter()
                    .find(|v| v.id == *id)
                {
                    err_sum += v.center.dist(p.centroid);
                    err_n += 1;
                }
            }
        }
        let avg = err_sum / err_n.max(1) as f64;
        // Cast shadows deliberately smear the segmented blobs, biasing
        // centroids a few px toward the shadow side (that bias is the
        // realistic feature noise the retrieval experiments need), so
        // the accuracy bound is looser than pixel-perfect.
        assert!(avg < 7.0, "average centroid error {avg} px");
    }

    #[test]
    fn track_frames_are_contiguous() {
        let (_, out) = small_run();
        for t in &out.tracks {
            for w in t.points.windows(2) {
                assert_eq!(w[1].frame, w[0].frame + 1, "gap in track {}", t.id);
            }
        }
    }

    #[test]
    fn spcpe_toggle_changes_little_on_clean_scenes() {
        let scenario = Scenario::tunnel_small(22);
        let sim = World::run(scenario);
        let with = process(&sim, ScenarioKind::Tunnel, &PipelineConfig::default());
        let without = process(
            &sim,
            ScenarioKind::Tunnel,
            &PipelineConfig {
                use_spcpe: false,
                ..PipelineConfig::default()
            },
        );
        // Both configurations find a similar number of tracks.
        let a = with.tracks.len() as i64;
        let b = without.tracks.len() as i64;
        assert!((a - b).abs() <= 2, "spcpe {a} vs raw {b}");
    }

    #[test]
    fn intersection_pipeline_tracks_crossing_traffic() {
        let mut scenario = Scenario::intersection_paper(24);
        scenario.total_frames = 300;
        scenario.incidents.clear();
        let sim = World::run(scenario);
        let out = process(&sim, ScenarioKind::Intersection, &PipelineConfig::default());
        assert!(!out.tracks.is_empty(), "no tracks at the intersection");
        // Both travel directions appear: some tracks move mostly in x,
        // others mostly in y.
        let mut horizontal = 0;
        let mut vertical = 0;
        for t in &out.tracks {
            let first = t.points.first().unwrap().centroid;
            let last = t.points.last().unwrap().centroid;
            let dx = (last.x - first.x).abs();
            let dy = (last.y - first.y).abs();
            if dx > dy * 2.0 {
                horizontal += 1;
            } else if dy > dx * 2.0 {
                vertical += 1;
            }
        }
        assert!(horizontal > 0, "no east-west tracks");
        assert!(vertical > 0, "no north-south tracks");
    }

    #[test]
    fn tracks_at_filters_by_frame() {
        let (_, out) = small_run();
        if let Some(t) = out.tracks.first() {
            let mid = (t.start_frame() + t.end_frame()) / 2;
            assert!(out.tracks_at(mid).any(|x| x.id == t.id));
            if t.start_frame() > 0 {
                assert!(!out.tracks_at(t.start_frame() - 1).any(|x| x.id == t.id));
            }
        }
    }
}
