//! Tracking-quality evaluation against simulator ground truth.
//!
//! The retrieval experiments depend on the substrate "\[having\] the
//! ability to track moving vehicle objects within successive video
//! frames" (paper §3.1). This module quantifies how well the synthetic
//! pipeline reproduces that ability with the standard multi-object
//! tracking measures:
//!
//! * **coverage** — fraction of ground-truth vehicle-frames matched by
//!   some track (≈ MOTA's miss complement);
//! * **precision** — mean distance between matched track points and
//!   the true centers (MOTP);
//! * **id switches** — matched frames where a vehicle's track id
//!   changed relative to its previous matched frame;
//! * **fragmentation** — number of distinct tracks covering each
//!   vehicle.

use crate::tracker::Track;
use std::collections::HashMap;
use tsvr_sim::world::SimOutput;

/// Aggregate tracking-quality measures.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackingQuality {
    /// Ground-truth vehicle-frame observations considered.
    pub gt_points: usize,
    /// Of those, how many were matched by a track point.
    pub matched_points: usize,
    /// Mean matched distance, px (MOTP). 0 when nothing matched.
    pub motp: f64,
    /// Identity switches across all vehicles.
    pub id_switches: usize,
    /// Mean number of distinct tracks per covered vehicle
    /// (1.0 = no fragmentation).
    pub mean_fragments: f64,
    /// Tracks that matched no vehicle at all (clutter).
    pub false_tracks: usize,
}

impl TrackingQuality {
    /// Coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.gt_points == 0 {
            0.0
        } else {
            self.matched_points as f64 / self.gt_points as f64
        }
    }
}

/// Evaluates tracks against the simulation, matching per frame by
/// nearest center within `max_dist` (greedy per track point — adequate
/// at surveillance densities).
pub fn evaluate(tracks: &[Track], sim: &SimOutput, max_dist: f64) -> TrackingQuality {
    // Ground truth points per frame.
    let mut gt_points = 0usize;
    for f in &sim.frames {
        gt_points += f.vehicles.len();
    }

    // For each track point (non-coasted), match to the nearest vehicle.
    // vehicle -> frame -> (track id). Also collect per-match distances.
    let mut matches: HashMap<u64, Vec<(u32, u64)>> = HashMap::new(); // vehicle -> (frame, track)
    let mut matched_points = 0usize;
    let mut dist_sum = 0.0f64;
    let mut track_matched: HashMap<u64, bool> = HashMap::new();

    for t in tracks {
        track_matched.entry(t.id).or_insert(false);
        for p in t.points.iter().filter(|p| !p.coasted) {
            let Some(frame) = sim.frames.get(p.frame as usize) else {
                continue;
            };
            let nearest = frame
                .vehicles
                .iter()
                .map(|v| (v.id, v.center.dist(p.centroid)))
                .filter(|&(_, d)| d <= max_dist)
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            if let Some((vid, d)) = nearest {
                matched_points += 1;
                dist_sum += d;
                matches.entry(vid).or_default().push((p.frame, t.id));
                track_matched.insert(t.id, true);
            }
        }
    }

    // Identity switches and fragmentation per vehicle.
    let mut id_switches = 0usize;
    let mut fragment_sum = 0usize;
    let covered = matches.len();
    for series in matches.values_mut() {
        series.sort_by_key(|&(f, _)| f);
        let mut distinct: Vec<u64> = Vec::new();
        let mut prev: Option<u64> = None;
        for &(_, tid) in series.iter() {
            if !distinct.contains(&tid) {
                distinct.push(tid);
            }
            if let Some(p) = prev {
                if p != tid {
                    id_switches += 1;
                }
            }
            prev = Some(tid);
        }
        fragment_sum += distinct.len();
    }

    TrackingQuality {
        gt_points,
        matched_points,
        motp: if matched_points > 0 {
            dist_sum / matched_points as f64
        } else {
            0.0
        },
        id_switches,
        mean_fragments: if covered > 0 {
            fragment_sum as f64 / covered as f64
        } else {
            0.0
        },
        false_tracks: track_matched.values().filter(|&&m| !m).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{process, PipelineConfig};
    use tsvr_sim::{Scenario, World};

    #[test]
    fn pipeline_quality_meets_substrate_bar() {
        let mut scenario = Scenario::tunnel_small(44);
        scenario.mean_spawn_interval = 70.0; // enough traffic to measure
        let sim = World::run(scenario);
        let out = process(
            &sim,
            tsvr_sim::ScenarioKind::Tunnel,
            &PipelineConfig::default(),
        );
        let q = evaluate(&out.tracks, &sim, 15.0);
        assert!(q.gt_points > 300, "scene too empty: {}", q.gt_points);
        assert!(
            q.coverage() > 0.75,
            "coverage {:.2} below substrate bar",
            q.coverage()
        );
        assert!(q.motp < 8.0, "MOTP {:.2} px too sloppy", q.motp);
        assert!(
            q.mean_fragments < 2.5,
            "tracks too fragmented: {:.2}",
            q.mean_fragments
        );
        // Id switches should be rare relative to matched points.
        assert!(
            (q.id_switches as f64) < q.matched_points as f64 * 0.05,
            "{} id switches over {} matches",
            q.id_switches,
            q.matched_points
        );
    }

    #[test]
    fn empty_inputs_are_safe() {
        let sim = World::run(Scenario::tunnel_small(45));
        let q = evaluate(&[], &sim, 15.0);
        assert_eq!(q.matched_points, 0);
        assert_eq!(q.coverage(), 0.0);
        assert_eq!(q.motp, 0.0);
        assert_eq!(q.false_tracks, 0);
    }

    #[test]
    fn perfect_tracks_score_perfectly() {
        // Build tracks straight from ground truth.
        let sim = World::run(Scenario::tunnel_small(46));
        let mut by_vehicle: HashMap<u64, Vec<(u32, tsvr_sim::Vec2)>> = HashMap::new();
        for f in &sim.frames {
            for v in &f.vehicles {
                by_vehicle
                    .entry(v.id)
                    .or_default()
                    .push((f.frame, v.center));
            }
        }
        let tracks: Vec<Track> = by_vehicle
            .into_iter()
            .map(|(id, pts)| Track {
                id,
                points: pts
                    .into_iter()
                    .map(|(frame, c)| crate::tracker::TrackPoint {
                        frame,
                        centroid: c,
                        mbr: tsvr_sim::Aabb::from_corners(c, c),
                        coasted: false,
                    })
                    .collect(),
                stats: Default::default(),
            })
            .collect();
        let q = evaluate(&tracks, &sim, 15.0);
        assert_eq!(q.matched_points, q.gt_points);
        assert!(q.motp < 1e-9);
        assert_eq!(q.id_switches, 0);
        assert!((q.mean_fragments - 1.0).abs() < 1e-9);
        assert_eq!(q.false_tracks, 0);
    }

    #[test]
    fn far_tracks_count_as_false() {
        let sim = World::run(Scenario::tunnel_small(47));
        let c = tsvr_sim::Vec2::new(5.0, 5.0); // corner, far from lanes
        let ghost = Track {
            id: 999,
            points: (0..30)
                .map(|i| crate::tracker::TrackPoint {
                    frame: i,
                    centroid: c,
                    mbr: tsvr_sim::Aabb::from_corners(c, c),
                    coasted: false,
                })
                .collect(),
            stats: Default::default(),
        };
        let q = evaluate(&[ghost], &sim, 10.0);
        assert_eq!(q.false_tracks, 1);
        assert_eq!(q.matched_points, 0);
    }
}
