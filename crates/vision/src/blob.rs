//! Connected-component labeling and blob statistics.
//!
//! Turns a foreground mask into vehicle candidate blobs: 8-connected
//! components above a minimum area, each summarized by its Minimal
//! Bounding Rectangle and centroid — exactly the yellow MBR and red
//! centroid dot of the paper's Fig. 1.

use crate::frame::{GrayFrame, Mask};
use tsvr_sim::{Aabb, Vec2};

/// One connected foreground component.
#[derive(Debug, Clone, PartialEq)]
pub struct Blob {
    /// Pixel count.
    pub area: usize,
    /// Minimal bounding rectangle (inclusive pixel coordinates).
    pub mbr: Aabb,
    /// Centroid of the component's pixels.
    pub centroid: Vec2,
    /// Mean source-image intensity over the component (0 when no source
    /// frame was supplied).
    pub mean_intensity: f64,
}

impl Blob {
    /// MBR width in pixels.
    pub fn width(&self) -> f64 {
        self.mbr.width() + 1.0
    }

    /// MBR height in pixels.
    pub fn height(&self) -> f64 {
        self.mbr.height() + 1.0
    }

    /// Fraction of the MBR covered by component pixels, in (0, 1].
    pub fn fill_ratio(&self) -> f64 {
        self.area as f64 / (self.width() * self.height())
    }
}

/// Extracts 8-connected components with at least `min_area` pixels.
///
/// `intensity` optionally supplies the original frame so blobs can carry
/// mean intensities (used by the PCA classifier).
pub fn extract_blobs(mask: &Mask, min_area: usize, intensity: Option<&GrayFrame>) -> Vec<Blob> {
    let w = mask.width() as i64;
    let h = mask.height() as i64;
    let idx = |x: i64, y: i64| (y * w + x) as usize;
    let mut visited = vec![false; (w * h) as usize];
    let mut blobs = Vec::new();
    let mut stack = Vec::new();

    for y0 in 0..h {
        for x0 in 0..w {
            if visited[idx(x0, y0)] || !mask.as_slice()[idx(x0, y0)] {
                continue;
            }
            // Flood fill.
            let mut area = 0usize;
            let mut sum = Vec2::ZERO;
            let mut int_sum = 0.0f64;
            let (mut min_x, mut min_y, mut max_x, mut max_y) = (x0, y0, x0, y0);
            visited[idx(x0, y0)] = true;
            stack.push((x0, y0));
            while let Some((x, y)) = stack.pop() {
                area += 1;
                sum = sum + Vec2::new(x as f64, y as f64);
                if let Some(f) = intensity {
                    int_sum += f.get(x as u32, y as u32) as f64;
                }
                min_x = min_x.min(x);
                min_y = min_y.min(y);
                max_x = max_x.max(x);
                max_y = max_y.max(y);
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let (nx, ny) = (x + dx, y + dy);
                        if nx >= 0
                            && ny >= 0
                            && nx < w
                            && ny < h
                            && !visited[idx(nx, ny)]
                            && mask.as_slice()[idx(nx, ny)]
                        {
                            visited[idx(nx, ny)] = true;
                            stack.push((nx, ny));
                        }
                    }
                }
            }
            if area >= min_area {
                blobs.push(Blob {
                    area,
                    mbr: Aabb::from_corners(
                        Vec2::new(min_x as f64, min_y as f64),
                        Vec2::new(max_x as f64, max_y as f64),
                    ),
                    centroid: sum * (1.0 / area as f64),
                    mean_intensity: if intensity.is_some() {
                        int_sum / area as f64
                    } else {
                        0.0
                    },
                });
            }
        }
    }
    // Deterministic order: top-left first (already guaranteed by the
    // scan order, but make the contract explicit).
    blobs.sort_by(|a, b| {
        (a.mbr.min.y, a.mbr.min.x)
            .partial_cmp(&(b.mbr.min.y, b.mbr.min.x))
            .unwrap()
    });
    blobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_with_rects(rects: &[(u32, u32, u32, u32)]) -> Mask {
        let mut m = Mask::empty(40, 30);
        for &(x0, y0, x1, y1) in rects {
            for y in y0..=y1 {
                for x in x0..=x1 {
                    m.set(x, y, true);
                }
            }
        }
        m
    }

    #[test]
    fn single_rectangle_blob() {
        let m = mask_with_rects(&[(5, 6, 14, 11)]);
        let blobs = extract_blobs(&m, 1, None);
        assert_eq!(blobs.len(), 1);
        let b = &blobs[0];
        assert_eq!(b.area, 60);
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.height(), 6.0);
        assert!((b.centroid.x - 9.5).abs() < 1e-9);
        assert!((b.centroid.y - 8.5).abs() < 1e-9);
        assert!((b.fill_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn separate_rectangles_are_distinct_blobs() {
        let m = mask_with_rects(&[(2, 2, 6, 5), (20, 10, 28, 15)]);
        let blobs = extract_blobs(&m, 1, None);
        assert_eq!(blobs.len(), 2);
        // Order: top-left first.
        assert!(blobs[0].mbr.min.y <= blobs[1].mbr.min.y);
    }

    #[test]
    fn diagonal_touch_merges_with_8_connectivity() {
        let mut m = Mask::empty(10, 10);
        m.set(3, 3, true);
        m.set(4, 4, true); // diagonal neighbor
        let blobs = extract_blobs(&m, 1, None);
        assert_eq!(blobs.len(), 1);
        assert_eq!(blobs[0].area, 2);
    }

    #[test]
    fn min_area_filters_specks() {
        let mut m = mask_with_rects(&[(5, 5, 12, 10)]);
        m.set(30, 20, true); // 1-px speck
        let blobs = extract_blobs(&m, 10, None);
        assert_eq!(blobs.len(), 1);
        assert!(blobs[0].area >= 10);
    }

    #[test]
    fn intensity_mean_computed_from_frame() {
        let m = mask_with_rects(&[(0, 0, 1, 1)]);
        let mut f = GrayFrame::black(40, 30);
        f.set(0, 0, 100);
        f.set(1, 0, 200);
        f.set(0, 1, 100);
        f.set(1, 1, 200);
        let blobs = extract_blobs(&m, 1, Some(&f));
        assert_eq!(blobs[0].mean_intensity, 150.0);
    }

    #[test]
    fn empty_mask_no_blobs() {
        let m = Mask::empty(8, 8);
        assert!(extract_blobs(&m, 1, None).is_empty());
    }

    #[test]
    fn l_shaped_component_is_one_blob() {
        let mut m = Mask::empty(20, 20);
        for x in 2..10 {
            m.set(x, 2, true);
        }
        for y in 2..10 {
            m.set(2, y, true);
        }
        let blobs = extract_blobs(&m, 1, None);
        assert_eq!(blobs.len(), 1);
        assert_eq!(blobs[0].area, 15);
        // Fill ratio well below 1 for an L.
        assert!(blobs[0].fill_ratio() < 0.5);
    }

    #[test]
    fn full_frame_component() {
        let mut m = Mask::empty(6, 6);
        for i in 0..36 {
            m.as_mut_slice()[i] = true;
        }
        let blobs = extract_blobs(&m, 1, None);
        assert_eq!(blobs.len(), 1);
        assert_eq!(blobs[0].area, 36);
    }
}
