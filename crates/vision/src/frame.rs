//! 8-bit grayscale frame buffer.

/// A grayscale image with row-major `u8` pixels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayFrame {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl GrayFrame {
    /// Creates a frame filled with `value`.
    pub fn filled(width: u32, height: u32, value: u8) -> Self {
        GrayFrame {
            width,
            height,
            data: vec![value; (width * height) as usize],
        }
    }

    /// Creates a black frame.
    pub fn black(width: u32, height: u32) -> Self {
        Self::filled(width, height, 0)
    }

    /// Frame width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the frame has zero pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw pixel slice (row-major).
    #[inline]
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw pixel slice.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Pixel value at `(x, y)`; panics out of bounds in debug builds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[(y * self.width + x) as usize]
    }

    /// Sets the pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        debug_assert!(x < self.width && y < self.height);
        self.data[(y * self.width + x) as usize] = v;
    }

    /// Sets the pixel if `(x, y)` is inside the frame; ignores otherwise.
    #[inline]
    pub fn set_clipped(&mut self, x: i64, y: i64, v: u8) {
        if x >= 0 && y >= 0 && (x as u32) < self.width && (y as u32) < self.height {
            self.data[(y as u32 * self.width + x as u32) as usize] = v;
        }
    }

    /// Absolute per-pixel difference `|self - other|`.
    ///
    /// This is the raw material for background subtraction; panics if
    /// the shapes differ.
    pub fn abs_diff(&self, other: &GrayFrame) -> GrayFrame {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        GrayFrame {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a.abs_diff(b))
                .collect(),
        }
    }

    /// Mean pixel intensity (0 for an empty frame).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&p| p as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Renders the frame as ASCII art (for debugging small frames).
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut s = String::with_capacity((self.width as usize + 1) * self.height as usize);
        for y in 0..self.height {
            for x in 0..self.width {
                let v = self.get(x, y) as usize * (RAMP.len() - 1) / 255;
                s.push(RAMP[v] as char);
            }
            s.push('\n');
        }
        s
    }
}

/// A binary mask with the same layout as a frame (true = foreground).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    width: u32,
    height: u32,
    data: Vec<bool>,
}

impl Mask {
    /// All-false mask.
    pub fn empty(width: u32, height: u32) -> Self {
        Mask {
            width,
            height,
            data: vec![false; (width * height) as usize],
        }
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Value at `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> bool {
        debug_assert!(x < self.width && y < self.height);
        self.data[(y * self.width + x) as usize]
    }

    /// Sets the value at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: bool) {
        debug_assert!(x < self.width && y < self.height);
        self.data[(y * self.width + x) as usize] = v;
    }

    /// Number of `true` pixels.
    pub fn count(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }

    /// Raw slice (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[bool] {
        &self.data
    }

    /// Mutable raw slice (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [bool] {
        &mut self.data
    }

    /// Morphological 3x3 majority filter: a pixel survives iff at least
    /// `min_neighbors` of its 8-neighborhood (plus itself) are set.
    /// Cleans salt-and-pepper noise out of threshold masks.
    ///
    /// Implemented as a separable box count (vertical column sums, then
    /// a horizontal sliding window) — O(1) work per pixel instead of 9
    /// neighborhood reads, which matters because this runs twice per
    /// video frame.
    pub fn majority_filter(&self, min_neighbors: u32) -> Mask {
        let w = self.width as usize;
        let h = self.height as usize;
        let mut out = Mask::empty(self.width, self.height);
        if w == 0 || h == 0 {
            return out;
        }
        // Vertical 3-row column sums.
        let mut col = vec![0u8; w * h];
        for y in 0..h {
            let up = y.checked_sub(1);
            let down = if y + 1 < h { Some(y + 1) } else { None };
            for x in 0..w {
                let mut c = self.data[y * w + x] as u8;
                if let Some(u) = up {
                    c += self.data[u * w + x] as u8;
                }
                if let Some(d) = down {
                    c += self.data[d * w + x] as u8;
                }
                col[y * w + x] = c;
            }
        }
        // Horizontal sliding window over the column sums.
        let need = min_neighbors as u8;
        for y in 0..h {
            let row = &col[y * w..(y + 1) * w];
            let mut run = row[0] + if w > 1 { row[1] } else { 0 };
            out.data[y * w] = run >= need;
            for x in 1..w {
                if x + 1 < w {
                    run += row[x + 1];
                }
                if x >= 2 {
                    run -= row[x - 2];
                }
                out.data[y * w + x] = run >= need;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_get_set() {
        let mut f = GrayFrame::black(4, 3);
        assert_eq!(f.width(), 4);
        assert_eq!(f.height(), 3);
        assert_eq!(f.len(), 12);
        f.set(2, 1, 200);
        assert_eq!(f.get(2, 1), 200);
        assert_eq!(f.get(0, 0), 0);
    }

    #[test]
    fn set_clipped_ignores_outside() {
        let mut f = GrayFrame::black(2, 2);
        f.set_clipped(-1, 0, 9);
        f.set_clipped(0, 5, 9);
        f.set_clipped(1, 1, 9);
        assert_eq!(f.get(1, 1), 9);
        assert_eq!(f.pixels().iter().filter(|&&p| p == 9).count(), 1);
    }

    #[test]
    fn abs_diff_symmetry() {
        let mut a = GrayFrame::filled(2, 2, 100);
        let b = GrayFrame::filled(2, 2, 130);
        a.set(0, 0, 180);
        let d1 = a.abs_diff(&b);
        let d2 = b.abs_diff(&a);
        assert_eq!(d1, d2);
        assert_eq!(d1.get(0, 0), 50);
        assert_eq!(d1.get(1, 1), 30);
    }

    #[test]
    fn mean_intensity() {
        let mut f = GrayFrame::filled(2, 1, 10);
        f.set(1, 0, 30);
        assert_eq!(f.mean(), 20.0);
    }

    #[test]
    fn ascii_rendering_dimensions() {
        let f = GrayFrame::filled(3, 2, 255);
        let s = f.to_ascii();
        assert_eq!(s.lines().count(), 2);
        assert!(s.lines().all(|l| l.chars().count() == 3));
        assert!(s.contains('@'));
    }

    #[test]
    fn mask_count_and_access() {
        let mut m = Mask::empty(3, 3);
        assert_eq!(m.count(), 0);
        m.set(1, 1, true);
        m.set(2, 0, true);
        assert_eq!(m.count(), 2);
        assert!(m.get(1, 1));
        assert!(!m.get(0, 0));
    }

    #[test]
    fn majority_filter_removes_isolated_pixels() {
        let mut m = Mask::empty(5, 5);
        m.set(2, 2, true); // isolated
        let cleaned = m.majority_filter(3);
        assert_eq!(cleaned.count(), 0);
    }

    #[test]
    fn majority_filter_keeps_solid_regions() {
        let mut m = Mask::empty(5, 5);
        for y in 1..4 {
            for x in 1..4 {
                m.set(x, y, true);
            }
        }
        let cleaned = m.majority_filter(4);
        // The 3x3 block survives (center has 9 neighbors, corners 4).
        assert!(cleaned.get(2, 2));
        assert!(cleaned.count() >= 5, "count = {}", cleaned.count());
    }
}
