//! Background learning and subtraction (paper §3.1).
//!
//! The authors enhance SPCPE with "a background learning and subtraction
//! method" to isolate vehicle pixels. We reproduce the standard recipe:
//! a per-pixel running-average background model learned over time (only
//! from pixels currently believed to be background, so stopped vehicles
//! do not burn in immediately), thresholded absolute difference, and a
//! majority filter to despeckle the mask.

use crate::frame::{GrayFrame, Mask};

/// Per-pixel running-average background model.
#[derive(Debug, Clone)]
pub struct BackgroundModel {
    mean: Vec<f64>,
    width: u32,
    height: u32,
    /// Learning rate for background pixels.
    pub alpha: f64,
    /// Foreground threshold in gray levels.
    pub threshold: f64,
}

impl BackgroundModel {
    /// Initializes the model from a first frame (assumed mostly
    /// background).
    pub fn from_frame(frame: &GrayFrame) -> Self {
        BackgroundModel {
            mean: frame.pixels().iter().map(|&p| p as f64).collect(),
            width: frame.width(),
            height: frame.height(),
            alpha: 0.05,
            threshold: 26.0,
        }
    }

    /// Learns from a batch of frames (e.g. an empty-scene warm-up
    /// sequence), updating every pixel.
    pub fn learn(&mut self, frames: &[GrayFrame]) {
        for f in frames {
            assert_eq!(f.width(), self.width);
            assert_eq!(f.height(), self.height);
            for (m, &p) in self.mean.iter_mut().zip(f.pixels()) {
                *m += self.alpha * (p as f64 - *m);
            }
        }
    }

    /// Classifies foreground pixels and selectively updates the model:
    /// background pixels adapt at `alpha`, foreground pixels at
    /// `alpha/20` (so long-stopped vehicles eventually merge into the
    /// background, as real systems do, but not within an event's
    /// duration).
    pub fn subtract_and_update(&mut self, frame: &GrayFrame) -> Mask {
        assert_eq!(frame.width(), self.width);
        assert_eq!(frame.height(), self.height);
        let mut mask = Mask::empty(self.width, self.height);
        let slow = self.alpha / 20.0;
        for (i, (&p, m)) in frame.pixels().iter().zip(self.mean.iter_mut()).enumerate() {
            let fg = (p as f64 - *m).abs() > self.threshold;
            let rate = if fg { slow } else { self.alpha };
            *m += rate * (p as f64 - *m);
            if fg {
                mask.as_mut_slice()[i] = true;
            }
        }
        mask.majority_filter(4)
    }

    /// Foreground classification without model update.
    pub fn subtract(&self, frame: &GrayFrame) -> Mask {
        assert_eq!(frame.width(), self.width);
        let mut mask = Mask::empty(self.width, self.height);
        for (i, (&p, m)) in frame.pixels().iter().zip(self.mean.iter()).enumerate() {
            if (p as f64 - m).abs() > self.threshold {
                mask.as_mut_slice()[i] = true;
            }
        }
        mask.majority_filter(4)
    }

    /// Current background estimate as a frame.
    pub fn background(&self) -> GrayFrame {
        let mut f = GrayFrame::black(self.width, self.height);
        for (i, &m) in self.mean.iter().enumerate() {
            f.pixels_mut()[i] = m.clamp(0.0, 255.0) as u8;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(v: u8) -> GrayFrame {
        GrayFrame::filled(32, 32, v)
    }

    fn with_block(base: u8, block: u8) -> GrayFrame {
        let mut f = flat(base);
        for y in 10..20 {
            for x in 8..24 {
                f.set(x, y, block);
            }
        }
        f
    }

    #[test]
    fn clean_background_yields_empty_mask() {
        let mut bg = BackgroundModel::from_frame(&flat(90));
        let m = bg.subtract_and_update(&flat(91));
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn bright_block_detected() {
        let mut bg = BackgroundModel::from_frame(&flat(90));
        let m = bg.subtract_and_update(&with_block(90, 180));
        // 16x10 block = 160 px, majority filter trims the border.
        assert!(m.count() > 100, "count = {}", m.count());
        assert!(m.get(16, 15));
        assert!(!m.get(2, 2));
    }

    #[test]
    fn dark_block_also_detected() {
        let mut bg = BackgroundModel::from_frame(&flat(120));
        let m = bg.subtract_and_update(&with_block(120, 20));
        assert!(m.count() > 100);
    }

    #[test]
    fn model_adapts_to_slow_illumination_change() {
        let mut bg = BackgroundModel::from_frame(&flat(90));
        // Drift the scene brightness upward slowly.
        for v in 90..130u8 {
            let m = bg.subtract_and_update(&flat(v));
            assert_eq!(m.count(), 0, "false positives at {v}");
        }
    }

    #[test]
    fn stopped_object_persists_for_event_duration() {
        let mut bg = BackgroundModel::from_frame(&flat(90));
        let f = with_block(90, 180);
        // A stopped vehicle should stay detected for at least ~100
        // frames (longer than any incident window).
        for i in 0..100 {
            let m = bg.subtract_and_update(&f);
            assert!(m.count() > 50, "lost object at frame {i}");
        }
    }

    #[test]
    fn stopped_object_eventually_burns_in() {
        // The slow foreground adaptation (alpha/20) means a permanently
        // parked object merges into the background on the multi-hundred
        // frame scale — long after any incident window, but eventually.
        let mut bg = BackgroundModel::from_frame(&flat(90));
        let f = with_block(90, 180);
        let mut frames_to_fade = None;
        for i in 0..5000 {
            let m = bg.subtract_and_update(&f);
            if m.count() == 0 {
                frames_to_fade = Some(i);
                break;
            }
        }
        let fade = frames_to_fade.expect("parked object never burned in");
        assert!(fade > 300, "burned in too fast: {fade} frames");
    }

    #[test]
    fn learn_converges_to_scene() {
        let mut bg = BackgroundModel::from_frame(&flat(0));
        let frames: Vec<GrayFrame> = (0..100).map(|_| flat(90)).collect();
        bg.learn(&frames);
        let est = bg.background();
        assert!((est.mean() - 90.0).abs() < 2.0, "mean = {}", est.mean());
    }

    #[test]
    fn subtract_without_update_is_pure() {
        let bg = BackgroundModel::from_frame(&flat(90));
        let m1 = bg.subtract(&with_block(90, 180));
        let m2 = bg.subtract(&with_block(90, 180));
        assert_eq!(m1, m2);
        assert!(m1.count() > 0);
    }
}
