//! PCA-based vehicle classification (paper §3.1, citing \[13\]).
//!
//! "The last phase of the framework is to classify vehicle objects into
//! different classes such as SUVs, pick-up trucks, and cars … based on
//! Principal Component Analysis." The classifier here trains on tracked
//! blob shape statistics: features are standardized, projected onto the
//! top principal components of the training covariance, and classified
//! by the nearest class centroid in the projected space.

use crate::tracker::BlobStats;
use tsvr_linalg::eigen::symmetric_eigen;
use tsvr_linalg::stats::{column_means, column_std_devs, covariance_matrix};
use tsvr_linalg::{LinalgError, Matrix};
use tsvr_sim::VehicleClass;

/// Feature vector extracted from a track's blob statistics.
pub fn features(stats: &BlobStats) -> Vec<f64> {
    vec![
        stats.width,
        stats.height,
        stats.area,
        stats.fill,
        stats.intensity,
        // Aspect ratio adds discriminative power for elongated pickups.
        if stats.height > 0.0 {
            stats.width / stats.height
        } else {
            0.0
        },
    ]
}

/// A trained PCA nearest-centroid classifier.
#[derive(Debug, Clone)]
pub struct PcaClassifier {
    mean: Vec<f64>,
    std: Vec<f64>,
    /// `d x k` projection basis (columns = principal components).
    basis: Matrix,
    /// Class centroids in the projected space.
    centroids: Vec<(VehicleClass, Vec<f64>)>,
    /// Fraction of variance captured by the retained components.
    pub explained_variance: f64,
}

impl PcaClassifier {
    /// Trains on labeled examples, retaining `k` principal components.
    pub fn train(
        samples: &[(BlobStats, VehicleClass)],
        k: usize,
    ) -> Result<PcaClassifier, LinalgError> {
        if samples.is_empty() {
            return Err(LinalgError::EmptyInput);
        }
        let rows: Vec<Vec<f64>> = samples.iter().map(|(s, _)| features(s)).collect();
        let mean = column_means(&rows)?;
        let mut std = column_std_devs(&rows)?;
        for s in &mut std {
            if *s < 1e-9 {
                *s = 1.0; // constant feature: leave centered values at 0
            }
        }
        let standardized: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .zip(mean.iter().zip(&std))
                    .map(|(&x, (&m, &s))| (x - m) / s)
                    .collect()
            })
            .collect();
        let cov = covariance_matrix(&standardized)?;
        let eig = symmetric_eigen(&cov)?;
        let k = k.clamp(1, eig.values.len());
        let basis = eig.principal_components(k);
        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        let kept: f64 = eig.values.iter().take(k).map(|v| v.max(0.0)).sum();
        let explained_variance = if total > 0.0 { kept / total } else { 1.0 };

        // Class centroids in the projected space.
        let mut by_class: Vec<(VehicleClass, Vec<Vec<f64>>)> = Vec::new();
        for ((_, class), row) in samples.iter().zip(&standardized) {
            let proj = project_row(&basis, row);
            match by_class.iter_mut().find(|(c, _)| c == class) {
                Some((_, v)) => v.push(proj),
                None => by_class.push((*class, vec![proj])),
            }
        }
        let centroids = by_class
            .into_iter()
            .map(|(c, rows)| {
                let m = column_means(&rows).expect("non-empty class");
                (c, m)
            })
            .collect();

        Ok(PcaClassifier {
            mean,
            std,
            basis,
            centroids,
            explained_variance,
        })
    }

    /// Projects blob statistics into the PCA space.
    pub fn project(&self, stats: &BlobStats) -> Vec<f64> {
        let row: Vec<f64> = features(stats)
            .iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect();
        project_row(&self.basis, &row)
    }

    /// Classifies by the nearest class centroid in the projected space.
    pub fn classify(&self, stats: &BlobStats) -> VehicleClass {
        let p = self.project(stats);
        self.centroids
            .iter()
            .min_by(|(_, a), (_, b)| {
                tsvr_linalg::vecops::sq_dist(a, &p)
                    .partial_cmp(&tsvr_linalg::vecops::sq_dist(b, &p))
                    .unwrap()
            })
            .map(|(c, _)| *c)
            .expect("trained classifier has centroids")
    }

    /// Number of retained components.
    pub fn components(&self) -> usize {
        self.basis.cols()
    }
}

fn project_row(basis: &Matrix, row: &[f64]) -> Vec<f64> {
    (0..basis.cols())
        .map(|c| (0..basis.rows()).map(|r| basis[(r, c)] * row[r]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic stats roughly matching the renderer's class geometry,
    /// with deterministic jitter.
    fn sample(class: VehicleClass, i: usize) -> BlobStats {
        let j = ((i * 37) % 10) as f64 / 10.0 - 0.5; // [-0.5, 0.4]
        let (w, h, int) = match class {
            VehicleClass::Car => (22.0, 10.0, 168.0),
            VehicleClass::Suv => (25.0, 12.0, 188.0),
            VehicleClass::Pickup => (28.0, 12.0, 148.0),
        };
        BlobStats {
            width: w + j * 2.0,
            height: h + j,
            area: (w + j * 2.0) * (h + j) * 0.95,
            fill: 0.95 + j * 0.02,
            intensity: int + j * 6.0,
        }
    }

    fn training_set() -> Vec<(BlobStats, VehicleClass)> {
        let mut set = Vec::new();
        for i in 0..20 {
            set.push((sample(VehicleClass::Car, i), VehicleClass::Car));
            set.push((sample(VehicleClass::Suv, i + 3), VehicleClass::Suv));
            set.push((sample(VehicleClass::Pickup, i + 7), VehicleClass::Pickup));
        }
        set
    }

    #[test]
    fn classifies_training_distribution() {
        let clf = PcaClassifier::train(&training_set(), 3).unwrap();
        let mut correct = 0;
        let mut total = 0;
        for i in 100..130 {
            for class in [VehicleClass::Car, VehicleClass::Suv, VehicleClass::Pickup] {
                if clf.classify(&sample(class, i)) == class {
                    correct += 1;
                }
                total += 1;
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.9,
            "accuracy {correct}/{total}"
        );
    }

    #[test]
    fn explained_variance_increases_with_k() {
        let set = training_set();
        let c1 = PcaClassifier::train(&set, 1).unwrap();
        let c3 = PcaClassifier::train(&set, 3).unwrap();
        assert!(c3.explained_variance >= c1.explained_variance - 1e-12);
        assert!(c1.explained_variance > 0.3);
        assert_eq!(c1.components(), 1);
        assert_eq!(c3.components(), 3);
    }

    #[test]
    fn k_is_clamped_to_dimension() {
        let clf = PcaClassifier::train(&training_set(), 100).unwrap();
        assert_eq!(clf.components(), features(&BlobStats::default()).len());
        assert!((clf.explained_variance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_training_set_rejected() {
        assert!(PcaClassifier::train(&[], 2).is_err());
    }

    #[test]
    fn single_class_always_wins() {
        let set: Vec<_> = (0..10)
            .map(|i| (sample(VehicleClass::Suv, i), VehicleClass::Suv))
            .collect();
        let clf = PcaClassifier::train(&set, 2).unwrap();
        assert_eq!(
            clf.classify(&sample(VehicleClass::Car, 3)),
            VehicleClass::Suv
        );
    }

    #[test]
    fn projection_dimensionality_matches_k() {
        let clf = PcaClassifier::train(&training_set(), 2).unwrap();
        assert_eq!(clf.project(&sample(VehicleClass::Car, 1)).len(), 2);
    }

    #[test]
    fn features_include_aspect_ratio_guard() {
        let f = features(&BlobStats::default());
        assert_eq!(*f.last().unwrap(), 0.0); // height 0 guarded
    }
}
