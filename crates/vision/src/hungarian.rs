//! Minimum-cost assignment (Hungarian algorithm / Jonker–Volgenant
//! shortest augmenting paths with potentials, O(n²·m)).
//!
//! Used by the tracker to associate detections with predicted track
//! positions each frame. Gating is expressed by giving infeasible pairs
//! a very large cost and discarding them after the solve.

/// Solves the rectangular assignment problem.
///
/// `cost` is a `rows x cols` matrix given as row slices with
/// `rows <= cols`. Returns, for each row, the column assigned to it; the
/// assignment minimizes total cost and every row is matched (with
/// `rows <= cols` a perfect row matching always exists).
///
/// Panics if `rows > cols` or the rows are ragged.
pub fn assign(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    assert!(
        n <= m,
        "assignment requires rows <= cols, got {n} rows and {m} cols"
    );
    assert!(cost.iter().all(|r| r.len() == m), "ragged cost matrix");

    // 1-based arrays per the classic formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1]; // row potentials
    let mut v = vec![0.0f64; m + 1]; // column potentials
    let mut p = vec![0usize; m + 1]; // p[j] = row assigned to column j (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut result = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            result[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(result.iter().all(|&c| c != usize::MAX));
    result
}

/// Total cost of an assignment.
pub fn total_cost(cost: &[Vec<f64>], assignment: &[usize]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[r][c])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimum over all row→column injections.
    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
            if row == cost.len() {
                return 0.0;
            }
            let mut best = f64::INFINITY;
            for c in 0..cost[0].len() {
                if !used[c] {
                    used[c] = true;
                    let v = cost[row][c] + rec(cost, row + 1, used);
                    best = best.min(v);
                    used[c] = false;
                }
            }
            best
        }
        rec(cost, 0, &mut vec![false; cost[0].len()])
    }

    #[test]
    fn identity_case() {
        let cost = vec![
            vec![0.0, 9.0, 9.0],
            vec![9.0, 0.0, 9.0],
            vec![9.0, 9.0, 0.0],
        ];
        assert_eq!(assign(&cost), vec![0, 1, 2]);
    }

    #[test]
    fn classic_3x3() {
        // Known instance: optimal = 5 (choose 1,3,1... verify by brute).
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = assign(&cost);
        assert_eq!(total_cost(&cost, &a), brute_force(&cost));
        assert_eq!(total_cost(&cost, &a), 5.0);
    }

    #[test]
    fn assignment_is_injective() {
        let cost = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![3.0, 6.0, 9.0, 12.0],
        ];
        let a = assign(&cost);
        let mut seen = std::collections::HashSet::new();
        for &c in &a {
            assert!(seen.insert(c), "column {c} used twice");
            assert!(c < 4);
        }
    }

    #[test]
    fn rectangular_picks_cheap_columns() {
        let cost = vec![vec![10.0, 1.0, 10.0, 2.0], vec![1.0, 10.0, 10.0, 10.0]];
        let a = assign(&cost);
        assert_eq!(a, vec![1, 0]);
    }

    #[test]
    fn matches_brute_force_on_pseudorandom_instances() {
        // Deterministic pseudo-random costs via a simple LCG.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 10.0
        };
        for trial in 0..30 {
            let n = 1 + (trial % 5);
            let m = n + (trial % 3);
            let cost: Vec<Vec<f64>> = (0..n).map(|_| (0..m).map(|_| next()).collect()).collect();
            let a = assign(&cost);
            let got = total_cost(&cost, &a);
            let want = brute_force(&cost);
            assert!(
                (got - want).abs() < 1e-9,
                "trial {trial}: got {got}, want {want}, cost {cost:?}"
            );
        }
    }

    #[test]
    fn single_row() {
        let cost = vec![vec![5.0, 2.0, 7.0]];
        assert_eq!(assign(&cost), vec![1]);
    }

    #[test]
    fn empty_input() {
        let cost: Vec<Vec<f64>> = Vec::new();
        assert!(assign(&cost).is_empty());
    }

    #[test]
    #[should_panic]
    fn more_rows_than_cols_panics() {
        let cost = vec![vec![1.0], vec![2.0]];
        let _ = assign(&cost);
    }

    #[test]
    fn handles_large_gating_costs() {
        const BIG: f64 = 1e9;
        let cost = vec![vec![BIG, 3.0], vec![2.0, BIG]];
        let a = assign(&cost);
        assert_eq!(a, vec![1, 0]);
    }
}
