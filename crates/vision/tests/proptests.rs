//! Property-based tests for the vision stack.

use proptest::prelude::*;
use tsvr_vision::blob::extract_blobs;
use tsvr_vision::frame::Mask;
use tsvr_vision::hungarian;

/// Brute-force optimal assignment cost.
fn brute_force(cost: &[Vec<f64>]) -> f64 {
    fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
        if row == cost.len() {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for c in 0..cost[0].len() {
            if !used[c] {
                used[c] = true;
                best = best.min(cost[row][c] + rec(cost, row + 1, used));
                used[c] = false;
            }
        }
        best
    }
    rec(cost, 0, &mut vec![false; cost[0].len()])
}

fn cost_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..100.0, cols), rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hungarian_matches_brute_force(
        (rows, cols) in (1usize..5).prop_flat_map(|r| (Just(r), r..6)),
        seed in any::<u32>(),
    ) {
        // Build deterministic costs from the seed to keep shrinking sane.
        let cost: Vec<Vec<f64>> = (0..rows)
            .map(|i| {
                (0..cols)
                    .map(|j| {
                        let h = (seed as u64)
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add((i * 31 + j * 17) as u64);
                        ((h >> 33) % 1000) as f64 / 10.0
                    })
                    .collect()
            })
            .collect();
        let assignment = hungarian::assign(&cost);
        let got = hungarian::total_cost(&cost, &assignment);
        let want = brute_force(&cost);
        prop_assert!((got - want).abs() < 1e-9, "got {got}, optimal {want}");
        // Injective.
        let mut seen = std::collections::HashSet::new();
        for &c in &assignment {
            prop_assert!(seen.insert(c));
        }
    }

    #[test]
    fn hungarian_invariant_under_row_constant_shift(
        cost in cost_matrix(3, 4),
        shift in 0.0f64..50.0,
    ) {
        // Adding a constant to one row must not change the optimal
        // assignment structure (classic LAP invariance).
        let a1 = hungarian::assign(&cost);
        let mut shifted = cost.clone();
        for v in &mut shifted[1] {
            *v += shift;
        }
        let a2 = hungarian::assign(&shifted);
        let c1 = hungarian::total_cost(&cost, &a1);
        let c2 = hungarian::total_cost(&cost, &a2);
        prop_assert!((c1 - c2).abs() < 1e-9, "assignment cost changed: {c1} vs {c2}");
    }

    #[test]
    fn blobs_partition_the_mask(bits in prop::collection::vec(any::<bool>(), 20 * 15)) {
        let mut mask = Mask::empty(20, 15);
        mask.as_mut_slice().copy_from_slice(&bits);
        let blobs = extract_blobs(&mask, 1, None);
        // Total blob area equals the number of set pixels.
        let total: usize = blobs.iter().map(|b| b.area).sum();
        prop_assert_eq!(total, mask.count());
        for b in &blobs {
            // Centroid inside the MBR; MBR inside the image.
            prop_assert!(b.mbr.contains(b.centroid));
            prop_assert!(b.mbr.min.x >= 0.0 && b.mbr.max.x < 20.0);
            prop_assert!(b.mbr.min.y >= 0.0 && b.mbr.max.y < 15.0);
            // Area can't exceed the MBR box.
            prop_assert!(b.area as f64 <= b.width() * b.height() + 1e-9);
            prop_assert!(b.fill_ratio() > 0.0 && b.fill_ratio() <= 1.0);
        }
    }

    #[test]
    fn min_area_only_filters(bits in prop::collection::vec(any::<bool>(), 16 * 16), min_area in 1usize..20) {
        let mut mask = Mask::empty(16, 16);
        mask.as_mut_slice().copy_from_slice(&bits);
        let all = extract_blobs(&mask, 1, None);
        let filtered = extract_blobs(&mask, min_area, None);
        // Filtering never invents blobs, and keeps exactly those big enough.
        prop_assert_eq!(
            filtered.len(),
            all.iter().filter(|b| b.area >= min_area).count()
        );
    }

    #[test]
    fn majority_filter_matches_neighborhood_definition(bits in prop::collection::vec(any::<bool>(), 12 * 12)) {
        let mut mask = Mask::empty(12, 12);
        mask.as_mut_slice().copy_from_slice(&bits);
        let cleaned = mask.majority_filter(5);
        // Definition check on every pixel: output set iff >= 5 of the
        // 3x3 neighborhood (self included) were set in the input. This
        // both removes isolated noise and fills single-pixel holes.
        for y in 0..12u32 {
            for x in 0..12u32 {
                let mut n = 0;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                        if nx >= 0 && ny >= 0 && nx < 12 && ny < 12 && mask.get(nx as u32, ny as u32) {
                            n += 1;
                        }
                    }
                }
                prop_assert_eq!(cleaned.get(x, y), n >= 5, "pixel ({}, {})", x, y);
            }
        }
    }
}
