//! Property-based tests for the vision stack, driven by the in-tree
//! seeded harness (`tsvr_sim::check`).

use tsvr_sim::check;
use tsvr_sim::Pcg32;
use tsvr_vision::blob::extract_blobs;
use tsvr_vision::frame::Mask;
use tsvr_vision::hungarian;

/// Brute-force optimal assignment cost.
fn brute_force(cost: &[Vec<f64>]) -> f64 {
    fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
        if row == cost.len() {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for c in 0..cost[0].len() {
            if !used[c] {
                used[c] = true;
                best = best.min(cost[row][c] + rec(cost, row + 1, used));
                used[c] = false;
            }
        }
        best
    }
    rec(cost, 0, &mut vec![false; cost[0].len()])
}

fn cost_matrix(rng: &mut Pcg32, rows: usize, cols: usize) -> Vec<Vec<f64>> {
    (0..rows)
        .map(|_| check::vec_f64(rng, cols, 0.0, 100.0))
        .collect()
}

fn random_mask(rng: &mut Pcg32, w: u32, h: u32) -> Mask {
    let bits = check::vec_bool(rng, (w * h) as usize, 0.5);
    let mut mask = Mask::empty(w, h);
    mask.as_mut_slice().copy_from_slice(&bits);
    mask
}

#[test]
fn hungarian_matches_brute_force() {
    check::cases(128, |case, rng| {
        let rows = check::len_in(rng, 1, 5);
        let cols = check::len_in(rng, rows, 6);
        let cost = cost_matrix(rng, rows, cols);
        let assignment = hungarian::assign(&cost);
        let got = hungarian::total_cost(&cost, &assignment);
        let want = brute_force(&cost);
        assert!(
            (got - want).abs() < 1e-9,
            "case {case}: got {got}, optimal {want}"
        );
        // Injective.
        let mut seen = std::collections::HashSet::new();
        for &c in &assignment {
            assert!(seen.insert(c), "case {case}: column reused");
        }
    });
}

#[test]
fn hungarian_invariant_under_row_constant_shift() {
    check::cases(128, |case, rng| {
        let cost = cost_matrix(rng, 3, 4);
        let shift = rng.uniform(0.0, 50.0);
        // Adding a constant to one row must not change the optimal
        // assignment structure (classic LAP invariance).
        let a1 = hungarian::assign(&cost);
        let mut shifted = cost.clone();
        for v in &mut shifted[1] {
            *v += shift;
        }
        let a2 = hungarian::assign(&shifted);
        let c1 = hungarian::total_cost(&cost, &a1);
        let c2 = hungarian::total_cost(&cost, &a2);
        assert!(
            (c1 - c2).abs() < 1e-9,
            "case {case}: assignment cost changed: {c1} vs {c2}"
        );
    });
}

#[test]
fn blobs_partition_the_mask() {
    check::cases(128, |case, rng| {
        let mask = random_mask(rng, 20, 15);
        let blobs = extract_blobs(&mask, 1, None);
        // Total blob area equals the number of set pixels.
        let total: usize = blobs.iter().map(|b| b.area).sum();
        assert_eq!(total, mask.count(), "case {case}");
        for b in &blobs {
            // Centroid inside the MBR; MBR inside the image.
            assert!(b.mbr.contains(b.centroid), "case {case}: centroid outside");
            assert!(
                b.mbr.min.x >= 0.0 && b.mbr.max.x < 20.0,
                "case {case}: MBR x outside image"
            );
            assert!(
                b.mbr.min.y >= 0.0 && b.mbr.max.y < 15.0,
                "case {case}: MBR y outside image"
            );
            // Area can't exceed the MBR box.
            assert!(
                b.area as f64 <= b.width() * b.height() + 1e-9,
                "case {case}: area beyond MBR"
            );
            assert!(
                b.fill_ratio() > 0.0 && b.fill_ratio() <= 1.0,
                "case {case}: fill ratio {}",
                b.fill_ratio()
            );
        }
    });
}

#[test]
fn min_area_only_filters() {
    check::cases(128, |case, rng| {
        let mask = random_mask(rng, 16, 16);
        let min_area = check::len_in(rng, 1, 20);
        let all = extract_blobs(&mask, 1, None);
        let filtered = extract_blobs(&mask, min_area, None);
        // Filtering never invents blobs, and keeps exactly those big enough.
        assert_eq!(
            filtered.len(),
            all.iter().filter(|b| b.area >= min_area).count(),
            "case {case}"
        );
    });
}

#[test]
fn majority_filter_matches_neighborhood_definition() {
    check::cases(128, |case, rng| {
        let mask = random_mask(rng, 12, 12);
        let cleaned = mask.majority_filter(5);
        // Definition check on every pixel: output set iff >= 5 of the
        // 3x3 neighborhood (self included) were set in the input. This
        // both removes isolated noise and fills single-pixel holes.
        for y in 0..12u32 {
            for x in 0..12u32 {
                let mut n = 0;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                        if nx >= 0 && ny >= 0 && nx < 12 && ny < 12 && mask.get(nx as u32, ny as u32)
                        {
                            n += 1;
                        }
                    }
                }
                assert_eq!(
                    cleaned.get(x, y),
                    n >= 5,
                    "case {case}: pixel ({x}, {y})"
                );
            }
        }
    });
}
