//! `tsvr` — command-line interface to the surveillance video retrieval
//! system.
//!
//! ```text
//! tsvr simulate --db traffic.db --scenario tunnel --seed 7 --clip-id 1 [--frames N] [--archive-video]
//! tsvr list     --db traffic.db [--location L] [--camera C]
//! tsvr info     --db traffic.db --clip-id 1
//! tsvr query    --db traffic.db --clip-id 1 [--event accident] [--learner ocsvm] [--rounds 4] [--top 20]
//! tsvr sessions --db traffic.db --clip-id 1
//! tsvr export   --db traffic.db --clip-id 1 --from 100 --to 115 --out frames/
//! tsvr compact  --db traffic.db
//! ```
//!
//! Argument parsing is hand-rolled (`--flag value` pairs) to stay within
//! the std-only dependency policy.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
