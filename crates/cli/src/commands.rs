//! Subcommand implementations.

use crate::args::{ArgError, Args};
use std::path::{Path, PathBuf};
use tsvr_core::{
    archive_clip_video, bags_from_bundle, bags_from_dataset, bundle_from_clip, labels_from_bundle,
    prepare_clip, EventQuery, LearnerKind, PipelineOptions,
};
use tsvr_mil::{GroundTruthOracle, Normalization, Oracle, RetrievalSession, SessionConfig};
use tsvr_sim::Scenario;
use tsvr_trajectory::checkpoint::FeatureConfig;
use tsvr_trajectory::{Dataset, WindowConfig};
use tsvr_viddb::{AnyDb, ClipMeta, FrameCodec, SessionRow, VideoDb};

const USAGE: &str = "usage: tsvr <command> [--flag value ...]

commands:
  simulate   --db F --scenario tunnel|intersection|tunnel-small|<fleet> --seed N
             --clip-id N [--frames N] [--location L] [--camera C] [--archive-video]
  sim        --list | --scenario <fleet-name> [--seed N]
             (the scenario fleet: list the hard retrieval-quality
             scenarios, or dry-run one and print its incident log
             without touching a database)
  list       --db F [--location L] [--camera C]
  info       --db F --clip-id N
  query      --db F --clip-id N [--event accident|u_turn|speeding]
             [--learner ocsvm|wrf|misvm|dd|emdd] [--rounds N] [--top N]
             [--use-index] [--rebuild-index]
             [--interactive]   (you label each page item y/n instead of the oracle)
  query \"<expr>\"  --db F [--top N] | --addr H:P [--top N]
             (archive-wide attribute + motion query through the
             shard-pruning progressive planner, e.g.
             \"camera = cam-1 and vdiff >= 3.5 and time in [0, 3600]\";
             clauses: event/class/camera/time/vdiff/theta/inv_mdist,
             joined with 'and'; prints plan stats and any degraded
             shards; --addr sends the same expression to a live server)
  sessions   --db F --clip-id N
  resume     --db F --clip-id N --session N [--learner L] [--rounds N] [--top N]
  session list     --db F [--clip-id N]   (every stored session, latest state)
  session replay   --db F --clip-id N --session N [--learner L] [--top N]
             (rebuild the stored learner and print its current page;
             a --learner that differs from the stored one is a typed error)
  session continue --db F --clip-id N --session N [--learner L]
             [--rounds N] [--top N]   (same as resume)
  serve      --db F [--addr H:P] [--workers N] [--queue N] [--deadline-ms N]
             [--top N] [--slowlog-ms N] [--flight-dump FILE]
             (concurrent retrieval service; line-delimited JSON
             protocol documented in DESIGN.md; {\"op\":\"shutdown\"} drains)
  search     --db F [--clips 1,2,3] [--event E] [--rounds N] [--top N]
             [--use-index] [--rebuild-index]
             (cross-camera: one session over several clips; default = all clips)
  index build  --db F [--clips 1,2,3]   (persist feature indexes so later
             queries skip extraction; default = every clip)
  index verify --db F [--clips 1,2,3]   (report fresh/stale/missing indexes)
  export     --db F --clip-id N --from N --to N --out DIR   (writes PGM images)
  verify     --db F   (integrity pass: decode-checks every record,
             quarantines corrupt clips, reports damage)
  compact    --db F   (rewrites live intact records; drops corrupt ones)
  demo       [--db F] [--seed N] [--rounds N] [--top N]
             (simulate + retrieve in one process; exercises every subsystem)
  stats      --metrics FILE | --addr H:P [--watch] [--interval-ms N]
             (pretty-print a --metrics-out snapshot, or poll a live
             server's metrics over its own protocol)
  trace      --addr H:P [--id N]   (print one request's span tree; the
             latest completed request when --id is omitted)
  slowlog    --addr H:P   (span trees of requests that exceeded the
             server's --slowlog-ms threshold)

--db F accepts a single-file database or a sharded database directory
(detected automatically). Pass --sharded on the command that creates a
new database to lay it out as a directory of per-(camera, hour) shard
logs; verify and compact then report and rewrite per shard.

every command also accepts --metrics-out FILE to dump the process's
span timings and counters as JSON on exit, and --threads N to size the
worker pool for the parallel pipeline stages (the TSVR_THREADS
environment variable does the same; results are identical at any
thread count)";

/// Dispatches one invocation.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err(format!("no command given\n{USAGE}"));
    };
    // `index` and `session` take a positional action before their
    // flags; every other command is flags-only after the name.
    let (sub_action, flag_argv) = if cmd == "index" || cmd == "session" {
        let actions = if cmd == "index" {
            "build|verify"
        } else {
            "list|replay|continue"
        };
        let action = argv
            .get(1)
            .ok_or_else(|| format!("{cmd}: missing action ({actions})\n{USAGE}"))?;
        (Some(action.as_str()), argv.get(2..).unwrap_or(&[]))
    } else if cmd == "query" && argv.get(1).is_some_and(|a| !a.starts_with("--")) {
        // `query "<expr>"` — the positional query-language form; the
        // legacy flags-only form (`query --clip-id N`) stays as-is.
        (Some(argv[1].as_str()), argv.get(2..).unwrap_or(&[]))
    } else {
        (None, &argv[1..])
    };
    let args = Args::parse(flag_argv)?;
    if args.get("threads").is_some() {
        let n = args.num::<usize>("threads", 0)?;
        if n == 0 {
            return Err("--threads must be >= 1".into());
        }
        tsvr_par::set_threads(n);
    }
    let result = match cmd.as_str() {
        "simulate" => simulate(&args),
        "sim" => sim_fleet(&args),
        "list" => list(&args),
        "info" => info(&args),
        "query" => match sub_action {
            Some(expr) => query_expr(expr, &args),
            None => query(&args),
        },
        "sessions" => sessions(&args),
        "resume" => resume(&args),
        "search" => search(&args),
        "export" => export(&args),
        "verify" => verify(&args),
        "index" => index_cmd(sub_action.expect("set for index"), &args),
        "session" => session_cmd(sub_action.expect("set for session"), &args),
        "serve" => serve_cmd(&args),
        "compact" => compact(&args),
        "demo" => demo(&args),
        "stats" => stats(&args),
        "trace" => trace_cmd(&args),
        "slowlog" => slowlog_cmd(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    // Dump metrics even when the command failed: a snapshot of a failing
    // run is exactly when the timings are wanted.
    if let Some(path) = args.get("metrics-out") {
        tsvr_obs::write_snapshot(Path::new(path))
            .map_err(|e| format!("write metrics to {path}: {e}"))?;
    }
    result
}

/// Runs the whole system in one process — simulation, vision,
/// trajectory features, storage, and an OC-SVM retrieval session — so a
/// single `--metrics-out` snapshot covers every instrumented subsystem.
fn demo(args: &Args) -> Result<(), String> {
    let seed = args.num::<u64>("seed", 2007)?;
    let scenario = Scenario::tunnel_small(seed);
    eprintln!("demo: simulating {} frames...", scenario.total_frames);
    let clip = prepare_clip(&scenario, &PipelineOptions::default());
    let meta = ClipMeta {
        clip_id: 1,
        name: format!("demo seed {seed}"),
        location: "demo-site".into(),
        camera: "cam-0".into(),
        start_time: 1_167_609_600,
        frame_count: scenario.total_frames,
        width: clip.sim.width,
        height: clip.sim.height,
    };
    let mut db = match args.get("db") {
        Some(path) => VideoDb::open(Path::new(path)).map_err(|e| format!("open {path}: {e}"))?,
        None => VideoDb::in_memory(),
    };
    db.put_clip(&bundle_from_clip(&clip, meta))
        .map_err(|e| e.to_string())?;
    let bundle = db.load_clip(1).map_err(|e| e.to_string())?;
    let bags = bags_from_bundle(&bundle, &FeatureConfig::default());
    let event = EventQuery::accidents();
    let oracle = GroundTruthOracle::new(labels_from_bundle(&bundle, &event));
    let cfg = SessionConfig {
        top_n: args.num("top", 10)?,
        feedback_rounds: args.num("rounds", 4)?,
        ..SessionConfig::default()
    };
    let learner = LearnerKind::paper_ocsvm();
    let (report, _) = RetrievalSession::new(&bags, learner.build_for(&bags), &oracle, cfg).run();
    println!(
        "demo: {} tracks, {} windows, {} relevant; accuracies {:?}",
        clip.vision.tracks.len(),
        bags.len(),
        report.relevant_total,
        report
            .accuracies
            .iter()
            .map(|a| format!("{:.0}%", a * 100.0))
            .collect::<Vec<_>>()
    );
    Ok(())
}

/// Sends one ops-plane request to a running `serve` instance over its
/// own line-delimited JSON protocol and returns the reply — the exact
/// code path every other client uses, framing included.
fn ops_request(addr: &str, req: tsvr_serve::Request) -> Result<tsvr_serve::Response, String> {
    use std::io::{BufRead, BufReader, Write};
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writeln!(
        writer,
        "{}",
        tsvr_serve::encode_request(&tsvr_serve::Envelope::new(req))
    )
    .map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| e.to_string())?;
    if line.trim().is_empty() {
        return Err(format!("{addr}: server closed the connection without replying"));
    }
    tsvr_serve::decode_response(&line)
}

/// Pretty-prints a metrics snapshot: a `--metrics-out` file, or a live
/// server's registry via the `stats` protocol op (`--watch` re-polls).
fn stats(args: &Args) -> Result<(), String> {
    if let Some(addr) = args.get("addr") {
        let interval =
            std::time::Duration::from_millis(args.num::<u64>("interval-ms", 2000)?.max(1));
        loop {
            match ops_request(addr, tsvr_serve::Request::Stats)? {
                tsvr_serve::Response::Stats { snapshot } => print!("{}", snapshot.render_table()),
                tsvr_serve::Response::Error(e) => return Err(e.to_string()),
                other => return Err(format!("unexpected stats reply {other:?}")),
            }
            if !args.switch("watch") {
                return Ok(());
            }
            std::thread::sleep(interval);
            println!("---");
        }
    }
    let path = args
        .get("metrics")
        .ok_or("stats needs --metrics FILE or --addr H:P")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let snap = tsvr_obs::Snapshot::from_json(&text).map_err(|e| format!("parse {path}: {e}"))?;
    print!("{}", snap.render_table());
    Ok(())
}

/// Prints one completed request's span tree from a running server.
fn trace_cmd(args: &Args) -> Result<(), String> {
    let addr = args.require("addr")?;
    let trace_id = match args.get("id") {
        Some(s) => Some(
            s.parse::<u64>()
                .map_err(|_| format!("--id: cannot parse {s:?}"))?,
        ),
        None => None,
    };
    match ops_request(addr, tsvr_serve::Request::Trace { trace_id })? {
        tsvr_serve::Response::Trace { trace } => {
            print!("{}", trace.render_tree());
            Ok(())
        }
        tsvr_serve::Response::Error(e) => Err(e.to_string()),
        other => Err(format!("unexpected trace reply {other:?}")),
    }
}

/// Prints a running server's retained slow-request span trees.
fn slowlog_cmd(args: &Args) -> Result<(), String> {
    let addr = args.require("addr")?;
    match ops_request(addr, tsvr_serve::Request::Slowlog)? {
        tsvr_serve::Response::Slowlog {
            threshold_ns,
            entries,
        } => {
            if threshold_ns == u64::MAX {
                println!("slowlog disabled (serve runs without a --slowlog-ms threshold)");
            } else {
                println!(
                    "slowlog threshold {:.1}ms, {} retained",
                    threshold_ns as f64 / 1e6,
                    entries.len()
                );
            }
            for t in &entries {
                print!("{}", t.render_tree());
            }
            Ok(())
        }
        tsvr_serve::Response::Error(e) => Err(e.to_string()),
        other => Err(format!("unexpected slowlog reply {other:?}")),
    }
}

/// Opens `--db`: an existing directory (or a fresh one under
/// `--sharded`) is a [`tsvr_viddb::ShardedDb`]; anything else is the
/// classic single-file database, created if absent.
fn open_db(args: &Args) -> Result<AnyDb, String> {
    let path = args.require("db")?;
    let p = Path::new(path);
    if args.switch("sharded") && !p.exists() {
        std::fs::create_dir_all(p).map_err(|e| format!("create {path}: {e}"))?;
    }
    AnyDb::open(p).map_err(|e| format!("open {path}: {e}"))
}

fn scenario_from(args: &Args) -> Result<Scenario, ArgError> {
    let seed = args.num::<u64>("seed", 2007)?;
    let mut s = match args.get("scenario").unwrap_or("tunnel") {
        "tunnel" => Scenario::tunnel_paper(seed),
        "intersection" => Scenario::intersection_paper(seed),
        "tunnel-small" => Scenario::tunnel_small(seed),
        // Fall through to the fleet registry: any member name is a
        // valid scenario everywhere a preset is (`tsvr sim --list`).
        other => tsvr_sim::fleet::scenario(other, seed)
            .ok_or_else(|| format!("unknown scenario {other:?} (tsvr sim --list)"))?,
    };
    if let Some(frames) = args.get("frames") {
        s.total_frames = frames
            .parse()
            .map_err(|_| format!("--frames: cannot parse {frames:?}"))?;
    }
    Ok(s)
}

/// `tsvr sim` — the scenario-fleet front door: list the registry or
/// dry-run one member (simulation only, no vision/database) and print
/// its ground-truth incident log.
fn sim_fleet(args: &Args) -> Result<(), String> {
    if args.switch("list") || args.get("scenario").is_none() {
        println!("{:<18}{:<18}{:<9}summary", "scenario", "target", "cameras");
        for m in tsvr_sim::fleet::members() {
            println!(
                "{:<18}{:<18}{:<9}{}",
                m.name,
                m.target.name(),
                m.cameras,
                m.summary
            );
        }
        return Ok(());
    }
    let name = args.require("scenario")?;
    let seed = args.num::<u64>("seed", 2007)?;
    let member = tsvr_sim::fleet::member(name)
        .ok_or_else(|| format!("unknown fleet scenario {name:?} (tsvr sim --list)"))?;
    let scenario = tsvr_sim::fleet::scenario(name, seed).expect("member implies scenario");
    eprintln!(
        "running {name} ({} frames, seed {seed}, target {})...",
        scenario.total_frames,
        member.target.name()
    );
    let out = tsvr_sim::World::run(scenario);
    println!(
        "{name}: {} frames, {} incidents",
        out.frames.len(),
        out.incidents.len()
    );
    println!("{:<18}{:>8}{:>8}  vehicles", "kind", "start", "end");
    for rec in &out.incidents {
        let ids: Vec<String> = rec.vehicle_ids.iter().map(|id| id.to_string()).collect();
        println!(
            "{:<18}{:>8}{:>8}  {}",
            rec.kind.name(),
            rec.start_frame,
            rec.end_frame,
            ids.join(",")
        );
    }
    let targets = out
        .incidents
        .iter()
        .filter(|r| r.kind == member.target)
        .count();
    if member.cameras > 1 {
        let cut = tsvr_sim::fleet::handoff_split_frame(&out, member.target);
        println!(
            "camera boundary at frame {cut} ({} target incident(s) span it)",
            targets
        );
    }
    if targets == 0 {
        return Err(format!(
            "target {} never triggered at seed {seed}",
            member.target.name()
        ));
    }
    Ok(())
}

fn simulate(args: &Args) -> Result<(), String> {
    let mut db = open_db(args)?;
    let clip_id = args.num::<u64>("clip-id", 1)?;
    let scenario = scenario_from(args)?;
    eprintln!(
        "simulating {} frames ({:?}) and running the vision pipeline...",
        scenario.total_frames, scenario.kind
    );
    let clip = prepare_clip(&scenario, &PipelineOptions::default());
    let meta = ClipMeta {
        clip_id,
        name: format!("{:?} seed {}", scenario.kind, scenario.seed),
        location: args.get("location").unwrap_or("unspecified").to_string(),
        camera: args.get("camera").unwrap_or("cam-0").to_string(),
        start_time: 1_167_609_600,
        frame_count: scenario.total_frames,
        width: clip.sim.width,
        height: clip.sim.height,
    };
    db.put_clip(&bundle_from_clip(&clip, meta))
        .map_err(|e| e.to_string())?;
    println!(
        "clip {clip_id}: {} tracks, {} windows, {} trajectory sequences, {} incidents",
        clip.vision.tracks.len(),
        clip.dataset.window_count(),
        clip.dataset.sequence_count(),
        clip.sim.incidents.len()
    );
    if args.switch("archive-video") {
        eprintln!("archiving video frames...");
        let vdb = db.db_for_clip_mut(clip_id).map_err(|e| e.to_string())?;
        let segments = archive_clip_video(vdb, clip_id, &clip, FrameCodec::default(), 50)
            .map_err(|e| e.to_string())?;
        println!(
            "archived {segments} video segments ({} bytes total log)",
            db.log_size()
        );
    }
    // Durability point: everything the command reported is on disk.
    db.sync().map_err(|e| e.to_string())?;
    Ok(())
}

fn list(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let mut clips = db.list_clips();
    if let Some(loc) = args.get("location") {
        clips.retain(|m| m.location == loc);
    }
    if let Some(cam) = args.get("camera") {
        clips.retain(|m| m.camera == cam);
    }
    println!(
        "{:<8}{:<28}{:<18}{:<10}{:>8}",
        "clip", "name", "location", "camera", "frames"
    );
    for m in clips {
        println!(
            "{:<8}{:<28}{:<18}{:<10}{:>8}",
            m.clip_id, m.name, m.location, m.camera, m.frame_count
        );
    }
    Ok(())
}

fn info(args: &Args) -> Result<(), String> {
    let mut db = open_db(args)?;
    let clip_id = args.num::<u64>("clip-id", 1)?;
    let bundle = db.load_clip(clip_id).map_err(|e| e.to_string())?;
    let m = &bundle.meta;
    println!("clip {clip_id}: {:?}", m.name);
    println!(
        "  location {:?} camera {:?} start_time {}",
        m.location, m.camera, m.start_time
    );
    println!("  {} frames at {}x{}", m.frame_count, m.width, m.height);
    println!(
        "  {} tracks, {} windows, {} incidents",
        bundle.tracks.len(),
        bundle.windows.len(),
        bundle.incidents.len()
    );
    for inc in &bundle.incidents {
        println!(
            "    incident {:<16} frames {:>5}..{:<5} vehicles {:?}",
            inc.kind, inc.start_frame, inc.end_frame, inc.vehicle_ids
        );
    }
    println!(
        "  {} stored sessions",
        db.sessions_for_clip(clip_id)
            .map_err(|e| e.to_string())?
            .len()
    );
    Ok(())
}

/// `--clips 1,2,3`, defaulting to every clip in the database.
fn clip_ids_from(args: &Args, db: &AnyDb) -> Result<Vec<u64>, String> {
    match args.get("clips") {
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("--clips: bad id {s:?}"))
            })
            .collect::<Result<_, _>>(),
        None => Ok(db.list_clips().iter().map(|m| m.clip_id).collect()),
    }
}

/// A clip's dataset, served from its stored feature index when allowed
/// and fresh; otherwise rebuilt from the archived bundle (pure data
/// reshaping — no vision work either way) and, when indexing was asked
/// for, persisted so the next query is a hit.
fn indexed_dataset(
    db: &mut AnyDb,
    clip_id: u64,
    use_index: bool,
    rebuild: bool,
) -> Result<Dataset, String> {
    let wcfg = WindowConfig::default();
    let vdb = db.db_for_clip_mut(clip_id).map_err(|e| e.to_string())?;
    if use_index && !rebuild {
        if let Some(ds) = tsvr_core::load_index(vdb, clip_id, &wcfg).map_err(|e| e.to_string())? {
            return Ok(ds);
        }
    }
    let bundle = vdb.load_clip(clip_id).map_err(|e| e.to_string())?;
    let ds = tsvr_core::dataset_from_bundle(&bundle, wcfg);
    if use_index || rebuild {
        tsvr_core::build_index(vdb, clip_id, &ds).map_err(|e| e.to_string())?;
    }
    Ok(ds)
}

/// `index build` / `index verify`.
fn index_cmd(action: &str, args: &Args) -> Result<(), String> {
    let mut db = open_db(args)?;
    let clip_ids = clip_ids_from(args, &db)?;
    if clip_ids.is_empty() {
        return Err("no clips in the database".into());
    }
    let wcfg = WindowConfig::default();
    match action {
        "build" => {
            for &id in &clip_ids {
                let vdb = db.db_for_clip_mut(id).map_err(|e| e.to_string())?;
                let bundle = vdb.load_clip(id).map_err(|e| e.to_string())?;
                let ds = tsvr_core::dataset_from_bundle(&bundle, wcfg);
                tsvr_core::build_index(vdb, id, &ds).map_err(|e| e.to_string())?;
                println!(
                    "indexed clip {id}: {} windows, {} trajectory sequences",
                    ds.windows.len(),
                    ds.windows.iter().map(|w| w.sequences.len()).sum::<usize>()
                );
            }
            println!("{} indexes stored", db.index_count());
            Ok(())
        }
        "verify" => {
            let mut stale = 0usize;
            let mut missing = 0usize;
            for &id in &clip_ids {
                // Raw presence first, so a config-hash mismatch reads
                // as "stale", not "missing".
                let present = db.load_index(id).map_err(|e| e.to_string())?.is_some();
                let vdb = db.db_for_clip_mut(id).map_err(|e| e.to_string())?;
                let status = match tsvr_core::load_index(vdb, id, &wcfg)
                    .map_err(|e| e.to_string())?
                {
                    Some(ds) => format!("fresh ({} windows)", ds.windows.len()),
                    None if present => {
                        stale += 1;
                        "STALE (rebuild with `index build`)".into()
                    }
                    None => {
                        missing += 1;
                        "missing".into()
                    }
                };
                println!("clip {id}: {status}");
            }
            if stale + missing > 0 {
                println!(
                    "{stale} stale, {missing} missing of {} clips — run `index build`",
                    clip_ids.len()
                );
            } else {
                println!("all {} indexes fresh", clip_ids.len());
            }
            Ok(())
        }
        other => Err(format!("unknown index action {other:?}\n{USAGE}")),
    }
}

fn learner_from(args: &Args) -> Result<LearnerKind, String> {
    Ok(match args.get("learner").unwrap_or("ocsvm") {
        "ocsvm" => LearnerKind::paper_ocsvm(),
        "wrf" => LearnerKind::WeightedRf(Normalization::Percentage),
        "misvm" => LearnerKind::MiSvm { c: 10.0 },
        "dd" => LearnerKind::DiverseDensity { scale: 8.0 },
        "emdd" => LearnerKind::EmDd { scale: 8.0 },
        other => return Err(format!("unknown learner {other:?}")),
    })
}

fn event_from(args: &Args) -> Result<EventQuery, String> {
    let name = args.get("event").unwrap_or("accident");
    EventQuery::from_name(name).map_err(|e| e.to_string())
}

/// Prints a planned query's outcome: canonical expression, plan
/// receipt, degraded-shard warnings, then the ranking.
fn print_plan_outcome(
    canonical: &str,
    ranking: &[tsvr_core::RankedWindow],
    stats: &tsvr_core::PlanStats,
    degraded: &[tsvr_core::DegradedShard],
) {
    println!("query: {canonical}");
    println!(
        "plan: {}/{} shards pruned, {}/{} clips pruned, {}/{} windows pre-filtered, {} ranked",
        stats.shards_pruned,
        stats.shards_total,
        stats.clips_pruned,
        stats.clips_considered,
        stats.windows_prefiltered,
        stats.windows_scanned,
        stats.windows_ranked
    );
    for d in degraded {
        println!(
            "warning: partial result — shard {} (camera {}, bucket {}) unavailable: {}",
            d.file, d.camera, d.bucket, d.reason
        );
    }
    if ranking.is_empty() {
        println!(
            "no matching windows{}",
            if degraded.is_empty() {
                ""
            } else {
                " among the servable shards"
            }
        );
    }
    for (i, r) in ranking.iter().enumerate() {
        println!(
            "  {:>3}. clip {} window {} score {:.4}",
            i + 1,
            r.clip_id,
            r.window_index,
            r.score
        );
    }
}

/// The query-language form: `tsvr query "<expr>" --db F` plans and
/// ranks locally; with `--addr` the same expression is sent to a live
/// server and the identical report is printed from its response.
fn query_expr(expr: &str, args: &Args) -> Result<(), String> {
    let k = args.num("top", 20)?;
    if let Some(addr) = args.get("addr") {
        // Canonicalize locally when the expression parses (the server
        // re-parses anyway), so remote and local output match exactly.
        let shown = tsvr_core::parse_query(expr)
            .map(|q| q.to_string())
            .unwrap_or_else(|_| expr.to_string());
        return match ops_request(
            addr,
            tsvr_serve::Request::Query {
                expr: expr.to_string(),
                k: Some(k),
            },
        )? {
            tsvr_serve::Response::QueryResult {
                ranking,
                stats,
                degraded,
            } => {
                print_plan_outcome(&shown, &ranking, &stats, &degraded);
                Ok(())
            }
            tsvr_serve::Response::Error(e) => Err(e.to_string()),
            other => Err(format!("unexpected response {other:?}")),
        };
    }
    let parsed = tsvr_core::parse_query(expr).map_err(|e| e.to_string())?;
    let mut db = open_db(args)?;
    let planner = tsvr_core::Planner::new(k);
    let out = planner
        .run(&mut db, &parsed, tsvr_core::Scorer::Heuristic)
        .map_err(|e| e.to_string())?;
    print_plan_outcome(&parsed.to_string(), &out.ranking, &out.stats, &out.degraded);
    Ok(())
}

fn query(args: &Args) -> Result<(), String> {
    let mut db = open_db(args)?;
    let clip_id = args.num::<u64>("clip-id", 1)?;
    let use_index = args.switch("use-index");
    let rebuild_index = args.switch("rebuild-index");
    let bags = if use_index || rebuild_index {
        let ds = indexed_dataset(&mut db, clip_id, use_index, rebuild_index)?;
        bags_from_dataset(&ds)
    } else {
        let bundle = db.load_clip(clip_id).map_err(|e| e.to_string())?;
        bags_from_bundle(&bundle, &FeatureConfig::default())
    };
    let bundle = db.load_clip(clip_id).map_err(|e| e.to_string())?;
    let event = event_from(args)?;
    let labels = labels_from_bundle(&bundle, &event);
    let cfg = SessionConfig {
        top_n: args.num("top", 20)?,
        feedback_rounds: args.num("rounds", 4)?,
        ..SessionConfig::default()
    };
    let learner = learner_from(args)?;

    if args.switch("interactive") {
        let stdin = std::io::stdin();
        let mut input = stdin.lock();
        return interactive_query(
            &mut db, clip_id, &bundle, &bags, &event, &labels, cfg, learner, &mut input,
        );
    }

    let oracle = GroundTruthOracle::new(labels);
    let (report, _) = RetrievalSession::new(&bags, learner.build_for(&bags), &oracle, cfg).run();

    println!(
        "query {:?} on clip {clip_id} with {} ({} relevant of {} windows):",
        event.name,
        report.learner,
        report.relevant_total,
        bags.len()
    );
    for (round, acc) in report.accuracies.iter().enumerate() {
        let label = if round == 0 {
            "initial".to_string()
        } else {
            format!("round {round}")
        };
        println!("  {label:<10} accuracy@{} = {:.0}%", cfg.top_n, acc * 100.0);
    }
    let last = report.final_ranking().unwrap_or(&[]);
    println!(
        "  final top {}: {:?}",
        cfg.top_n.min(last.len()),
        &last[..cfg.top_n.min(last.len())]
    );

    // Persist the session.
    let session_id = db.session_count() as u64 + 1;
    db.put_session(&SessionRow {
        session_id,
        clip_id,
        query: event.name.into(),
        learner: report.learner.into(),
        feedback: report
            .rankings
            .iter()
            .take(cfg.feedback_rounds)
            .map(|r| {
                r.iter()
                    .take(cfg.top_n)
                    .map(|&w| {
                            // On-disk session rows store u32 window ids;
                            // fail loudly rather than alias past 2^32.
                            let id = u32::try_from(w).expect("window id exceeds on-disk u32 range");
                            (id, oracle.label(w))
                        })
                    .collect()
            })
            .collect(),
        accuracies: report.accuracies.clone(),
    })
    .map_err(|e| e.to_string())?;
    db.sync().map_err(|e| e.to_string())?;
    println!("  (stored as session {session_id})");
    Ok(())
}

/// The most advanced stored row for a session (`session_id == 0` means
/// "the latest session for the clip"). Checkpoint rows carry the full
/// feedback history, so the row with the most rounds is the freshest
/// state; among equals the later append wins.
fn stored_session_row(
    db: &mut AnyDb,
    clip_id: u64,
    session_id: u64,
) -> Result<SessionRow, String> {
    let stored = db.sessions_for_clip(clip_id).map_err(|e| e.to_string())?;
    let wanted = if session_id == 0 {
        stored.last().map(|s| s.session_id)
    } else {
        Some(session_id)
    };
    wanted
        .and_then(|id| {
            stored
                .into_iter()
                .enumerate()
                .filter(|(_, s)| s.session_id == id)
                .max_by_key(|(i, s)| (s.feedback.len(), *i))
                .map(|(_, s)| s)
        })
        .ok_or_else(|| format!("no stored session {session_id} for clip {clip_id}"))
}

/// The learner kind to rebuild a stored session with: `--learner` when
/// given (replay then validates it against the row), else the kind the
/// row itself names.
fn kind_for_row(args: &Args, row: &SessionRow) -> Result<LearnerKind, String> {
    match args.get("learner") {
        Some(_) => learner_from(args),
        None => LearnerKind::from_learner_name(&row.learner).ok_or_else(|| {
            format!(
                "stored session {} uses unknown learner {:?}",
                row.session_id, row.learner
            )
        }),
    }
}

fn resume(args: &Args) -> Result<(), String> {
    let mut db = open_db(args)?;
    let clip_id = args.num::<u64>("clip-id", 1)?;
    let session_id = args.num::<u64>("session", 0)?;
    let row = stored_session_row(&mut db, clip_id, session_id)?;

    let bundle = db.load_clip(clip_id).map_err(|e| e.to_string())?;
    let bags = bags_from_bundle(&bundle, &FeatureConfig::default());
    let event = EventQuery::from_name(&row.query).unwrap_or_else(|_| EventQuery::accidents());
    let oracle = GroundTruthOracle::new(labels_from_bundle(&bundle, &event));
    let top_n = args.num("top", 20)?;
    let rounds = args.num("rounds", 2)?;
    let kind = kind_for_row(args, &row)?;
    let report = tsvr_core::continue_session(&bags, &row, kind, &oracle, top_n, rounds)
        .map_err(|e| e.to_string())?;
    println!(
        "resumed session {} (query {:?}, {} stored rounds):",
        row.session_id,
        row.query,
        row.feedback.len()
    );
    for (round, acc) in report.accuracies.iter().enumerate() {
        let label = if round == 0 {
            "restored".to_string()
        } else {
            format!("+round {round}")
        };
        println!("  {label:<10} accuracy@{top_n} = {:.0}%", acc * 100.0);
    }
    Ok(())
}

/// Drives a retrieval session with a human in the loop: each round's
/// page is printed with window context, the user answers y/n per item,
/// and the learner retrains on those labels (the paper's Fig. 7 flow in
/// a terminal).
#[allow(clippy::too_many_arguments)] // one-shot plumbing from `query`
fn interactive_query(
    db: &mut AnyDb,
    clip_id: u64,
    bundle: &tsvr_viddb::ClipBundle,
    bags: &[tsvr_mil::Bag],
    event: &EventQuery,
    gt_labels: &[bool],
    cfg: SessionConfig,
    learner_kind: LearnerKind,
    input: &mut dyn std::io::BufRead,
) -> Result<(), String> {
    use tsvr_mil::session::rank_by;
    use tsvr_mil::{heuristic, Learner};

    let mut learner = learner_kind.build_for(bags);
    let mut ranking = rank_by(bags, heuristic::bag_score);
    let mut all_feedback: Vec<Vec<(u32, bool)>> = Vec::new();
    let mut accuracies: Vec<f64> = vec![tsvr_mil::metrics::accuracy_at(
        &ranking, gt_labels, cfg.top_n,
    )];

    for round in 1..=cfg.feedback_rounds {
        println!(
            "
-- round {round}: label the top {} windows --",
            cfg.top_n
        );
        let mut feedback = Vec::new();
        for &w in ranking.iter().take(cfg.top_n) {
            let win = &bundle.windows[w];
            print!(
                "window {:>3} frames {:>5}..{:<5} ({} vehicles)  {} [y/N] ",
                w,
                win.start_frame,
                win.end_frame,
                win.sequences.len(),
                event.name
            );
            use std::io::Write;
            std::io::stdout().flush().ok();
            let mut line = String::new();
            if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
                println!("(input closed; stopping feedback early)");
                break;
            }
            let relevant = matches!(line.trim(), "y" | "Y" | "yes");
            feedback.push((w, relevant));
        }
        if feedback.is_empty() {
            break;
        }
        learner.learn(bags, &feedback);
        all_feedback.push(feedback.iter().map(|&(w, r)| (w as u32, r)).collect());
        ranking = rank_by(bags, |b| learner.score(b));
        let acc = tsvr_mil::metrics::accuracy_at(&ranking, gt_labels, cfg.top_n);
        accuracies.push(acc);
        println!(
            "   accuracy@{} vs stored ground truth: {:.0}%",
            cfg.top_n,
            acc * 100.0
        );
    }

    let session_id = db.session_count() as u64 + 1;
    db.put_session(&SessionRow {
        session_id,
        clip_id,
        query: event.name.into(),
        learner: learner.name().into(),
        feedback: all_feedback,
        accuracies,
    })
    .map_err(|e| e.to_string())?;
    db.sync().map_err(|e| e.to_string())?;
    println!(
        "
stored as session {session_id}"
    );
    Ok(())
}

fn sessions(args: &Args) -> Result<(), String> {
    let mut db = open_db(args)?;
    let clip_id = args.num::<u64>("clip-id", 1)?;
    let sessions = db.sessions_for_clip(clip_id).map_err(|e| e.to_string())?;
    if sessions.is_empty() {
        println!("no sessions for clip {clip_id}");
        return Ok(());
    }
    for s in sessions {
        println!(
            "session {:<4} query {:<10} learner {:<18} accuracies {:?}",
            s.session_id,
            s.query,
            s.learner,
            s.accuracies
                .iter()
                .map(|a| format!("{:.0}%", a * 100.0))
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}

/// `session list` / `session replay` / `session continue`.
fn session_cmd(action: &str, args: &Args) -> Result<(), String> {
    match action {
        "list" => session_list(args),
        "replay" => session_replay(args),
        // `continue` is `resume` under the subcommand's name.
        "continue" => resume(args),
        other => Err(format!("unknown session action {other:?}\n{USAGE}")),
    }
}

/// Every stored session (optionally one clip's), reduced to its latest
/// checkpoint.
fn session_list(args: &Args) -> Result<(), String> {
    let mut db = open_db(args)?;
    let mut clip_ids: Vec<u64> = db.session_index().iter().map(|&(_, cid)| cid).collect();
    clip_ids.sort_unstable();
    clip_ids.dedup();
    if let Some(only) = args.get("clip-id") {
        let only: u64 = only
            .parse()
            .map_err(|_| format!("--clip-id: cannot parse {only:?}"))?;
        clip_ids.retain(|&c| c == only);
    }
    if clip_ids.is_empty() {
        println!("no stored sessions");
        return Ok(());
    }
    println!(
        "{:<10}{:<8}{:<12}{:<20}{:<8}accuracies",
        "session", "clip", "query", "learner", "rounds"
    );
    for cid in clip_ids {
        let rows = db.sessions_for_clip(cid).map_err(|e| e.to_string())?;
        // Latest checkpoint per session id (rows carry full history, so
        // the most rounds wins; later append breaks ties).
        let mut latest: std::collections::BTreeMap<u64, (usize, SessionRow)> = Default::default();
        for (i, r) in rows.into_iter().enumerate() {
            let replace = match latest.get(&r.session_id) {
                Some((j, prev)) => (r.feedback.len(), i) > (prev.feedback.len(), *j),
                None => true,
            };
            if replace {
                latest.insert(r.session_id, (i, r));
            }
        }
        for (sid, (_, r)) in latest {
            println!(
                "{:<10}{:<8}{:<12}{:<20}{:<8}{:?}",
                sid,
                cid,
                r.query,
                r.learner,
                r.feedback.len(),
                r.accuracies
                    .iter()
                    .map(|a| format!("{:.0}%", a * 100.0))
                    .collect::<Vec<_>>()
            );
        }
    }
    Ok(())
}

/// Rebuilds a stored session's learner by replaying its feedback and
/// prints the page it would serve now. `--learner` must match the
/// stored kind — the typed replay error surfaces here.
fn session_replay(args: &Args) -> Result<(), String> {
    use tsvr_mil::session::rank_by;
    use tsvr_mil::Learner;
    let mut db = open_db(args)?;
    let clip_id = args.num::<u64>("clip-id", 1)?;
    let session_id = args.num::<u64>("session", 0)?;
    let row = stored_session_row(&mut db, clip_id, session_id)?;
    let bundle = db.load_clip(clip_id).map_err(|e| e.to_string())?;
    let bags = bags_from_bundle(&bundle, &FeatureConfig::default());
    let kind = kind_for_row(args, &row)?;
    let learner = tsvr_core::replay_session(&bags, &row, kind).map_err(|e| e.to_string())?;
    let ranking = if row.feedback.is_empty() {
        rank_by(&bags, tsvr_mil::heuristic::bag_score)
    } else {
        rank_by(&bags, |b| learner.score(b))
    };
    let top_n = args.num::<usize>("top", 20)?.min(ranking.len());
    println!(
        "session {} (clip {clip_id}, query {:?}, learner {}, {} rounds replayed):",
        row.session_id,
        row.query,
        learner.name(),
        row.feedback.len()
    );
    println!("  current top {top_n}: {:?}", &ranking[..top_n]);
    Ok(())
}

/// Runs the concurrent retrieval service until a client sends
/// `{"op":"shutdown"}` (graceful drain).
fn serve_cmd(args: &Args) -> Result<(), String> {
    let db = open_db(args)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7070");
    let workers = args.num::<usize>("workers", 4)?;
    if workers == 0 {
        return Err("--workers must be >= 1".into());
    }
    // Requests slower than this land in the slowlog with their full span
    // tree (0 retains everything — useful when smoke-testing).
    let slowlog_ms = args.num::<u64>("slowlog-ms", 100)?;
    tsvr_obs::trace::set_slow_threshold_ns(slowlog_ms.saturating_mul(1_000_000));
    if let Some(path) = args.get("flight-dump") {
        tsvr_obs::trace::set_dump_path(Some(PathBuf::from(path)));
    }
    let service = std::sync::Arc::new(tsvr_serve::Service::new(
        db,
        tsvr_serve::ServiceConfig {
            default_top_n: args.num("top", 20)?,
            default_deadline_ms: args.num("deadline-ms", 30_000)?,
        },
    ));
    let server = tsvr_serve::Server::start(
        service,
        addr,
        tsvr_serve::ServerConfig {
            workers,
            queue_cap: args.num("queue", 64)?,
        },
    )
    .map_err(|e| format!("bind {addr}: {e}"))?;
    println!("serving on {} ({workers} workers)", server.addr());
    server.join();
    println!("drained; all acked feedback rounds are checkpointed");
    Ok(())
}

/// Cross-camera retrieval over several clips at once (the capability
/// the paper's §6.2 names as its limitation).
fn search(args: &Args) -> Result<(), String> {
    let mut db = open_db(args)?;
    let clip_ids = clip_ids_from(args, &db)?;
    if clip_ids.is_empty() {
        return Err("no clips in the database".into());
    }
    let event = event_from(args)?;
    let use_index = args.switch("use-index");
    let rebuild_index = args.switch("rebuild-index");
    let index = if use_index || rebuild_index {
        // Index-served path: bags come from stored feature segments;
        // only the labels (incident annotations) are read from bundles.
        let mut parts = Vec::with_capacity(clip_ids.len());
        for &id in &clip_ids {
            let ds = indexed_dataset(&mut db, id, use_index, rebuild_index)?;
            let bags = bags_from_dataset(&ds);
            let bundle = db.load_clip(id).map_err(|e| e.to_string())?;
            let labels = labels_from_bundle(&bundle, &event);
            parts.push((id, bags, labels));
        }
        // Deterministic cross-clip preview straight off the index,
        // scattered one task per shard (byte-identical to the
        // single-shard path at any thread count).
        let mut by_shard: std::collections::BTreeMap<String, Vec<tsvr_core::ClipWindows>> =
            Default::default();
        for (id, bags, _) in &parts {
            let shard = db.shard_of_clip(*id).unwrap_or("-").to_string();
            by_shard.entry(shard).or_default().push(tsvr_core::ClipWindows {
                clip_id: *id,
                bags: bags.clone(),
            });
        }
        let shards: Vec<tsvr_core::ShardWindows> = by_shard
            .into_iter()
            .map(|(shard, clips)| tsvr_core::ShardWindows { shard, clips })
            .collect();
        let k = args.num("top", 20)?;
        println!("heuristic top {k} (index-served):");
        for r in tsvr_core::sharded_heuristic_topk(&shards, k) {
            println!(
                "  clip {} window {} score {:.4}",
                r.clip_id, r.window_index, r.score
            );
        }
        tsvr_core::MultiClipIndex::from_parts(parts)
    } else {
        let bundles: Vec<std::sync::Arc<tsvr_viddb::ClipBundle>> = clip_ids
            .iter()
            .map(|&id| db.load_clip(id).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&tsvr_viddb::ClipBundle> = bundles.iter().map(|b| b.as_ref()).collect();
        tsvr_core::MultiClipIndex::build(&refs, &event, &FeatureConfig::default())
    };
    println!(
        "cross-camera index: {} windows from {} clips",
        index.len(),
        clip_ids.len()
    );

    let oracle = GroundTruthOracle::new(index.labels.clone());
    let cfg = SessionConfig {
        top_n: args.num("top", 20)?,
        feedback_rounds: args.num("rounds", 4)?,
        ..SessionConfig::default()
    };
    let learner = learner_from(args)?;
    let (report, _) =
        RetrievalSession::new(&index.bags, learner.build_for(&index.bags), &oracle, cfg).run();
    for (round, acc) in report.accuracies.iter().enumerate() {
        println!(
            "  round {round}: accuracy@{} = {:.0}%",
            cfg.top_n,
            acc * 100.0
        );
    }
    println!("final top {}:", cfg.top_n.min(index.len()));
    for &bag in report.final_ranking().unwrap_or(&[]).iter().take(cfg.top_n) {
        let (clip, window) = index.resolve(bag).unwrap();
        let name = db.meta(clip).map(|m| m.name.clone()).unwrap_or_default();
        println!(
            "  clip {clip} ({name}) window {window}{}",
            if index.labels[bag] {
                "  <- relevant"
            } else {
                ""
            }
        );
    }
    Ok(())
}

/// Writes one frame as a binary PGM (P5) image.
fn write_pgm(path: &PathBuf, frame: &tsvr_viddb::StoredFrame) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    write!(f, "P5\n{} {}\n255\n", frame.width, frame.height)?;
    f.write_all(&frame.pixels)
}

fn export(args: &Args) -> Result<(), String> {
    let mut db = open_db(args)?;
    let clip_id = args.num::<u64>("clip-id", 1)?;
    let from = args.num::<u32>("from", 0)?;
    let to = args.num::<u32>("to", from + 15)?;
    let out = PathBuf::from(args.require("out")?);
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let frames = db
        .db_for_clip_mut(clip_id)
        .and_then(|vdb| vdb.load_frames(clip_id, from, to))
        .map_err(|e| e.to_string())?;
    if frames.is_empty() {
        return Err(format!(
            "no archived frames in [{from}, {to}) — was the clip simulated with --archive-video?"
        ));
    }
    for (idx, frame) in &frames {
        let path = out.join(format!("clip{clip_id}_frame{idx:05}.pgm"));
        write_pgm(&path, frame).map_err(|e| e.to_string())?;
    }
    println!("wrote {} PGM frames to {}", frames.len(), out.display());
    Ok(())
}

fn compact(args: &Args) -> Result<(), String> {
    let mut db = open_db(args)?;
    let before = db.log_size();
    db.compact().map_err(|e| e.to_string())?;
    println!("compacted: {} -> {} bytes", before, db.log_size());
    Ok(())
}

/// Full-database integrity pass: decode-checks every stored record and
/// reports (without destroying) whatever damage it finds. Pair with
/// `compact` to drop the damage for good.
fn verify(args: &Args) -> Result<(), String> {
    let mut db = open_db(args)?;
    let reports = db.verify().map_err(|e| e.to_string())?;
    let sharded = matches!(db, AnyDb::Sharded(_));
    let mut report = tsvr_viddb::VerifyReport::default();
    for (shard, r) in &reports {
        if sharded {
            println!(
                "shard {shard}: {} records, {} clips intact, {} quarantined",
                r.records_checked, r.clips_intact, r.clips_quarantined
            );
        }
        report.records_checked += r.records_checked;
        report.clips_intact += r.clips_intact;
        report.clips_quarantined += r.clips_quarantined;
        report.sessions_dropped += r.sessions_dropped;
        report.segments_dropped += r.segments_dropped;
    }
    println!(
        "verified {} records: {} clips intact, {} quarantined, {} sessions dropped, {} video segments dropped",
        report.records_checked,
        report.clips_intact,
        report.clips_quarantined,
        report.sessions_dropped,
        report.segments_dropped,
    );
    let faults = db.fault_report();
    if faults.truncated_tail_bytes > 0 {
        println!(
            "  open-time recovery truncated a {}-byte torn tail",
            faults.truncated_tail_bytes
        );
    }
    if faults.recovered_header {
        println!("  open-time recovery re-initialised a torn file header");
    }
    for region in &faults.corrupt_regions {
        println!(
            "  corrupt region: offset {} len {} (skipped at open)",
            region.offset, region.len
        );
    }
    for q in &faults.quarantined_clips {
        println!(
            "  quarantined clip {}: {} (re-ingest to repair, or compact to drop)",
            q.clip_id, q.reason
        );
    }
    let quarantined_shards = db.quarantined_shards();
    for (file, reason) in &quarantined_shards {
        println!("  quarantined shard {file}: {reason} (other shards keep serving)");
    }
    if report.is_clean() && faults.is_clean() && quarantined_shards.is_empty() {
        println!("  database is clean");
    } else {
        // Damage found, but the database still serves what survived.
        println!("  run `compact` to rewrite the log without the damage");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_db(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("tsvr-cli-test-{}-{name}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p.to_string_lossy().into_owned()
    }

    fn run(argv: &[&str]) -> Result<(), String> {
        let v: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    #[test]
    fn full_cli_workflow() {
        let db = temp_db("flow");
        run(&[
            "simulate",
            "--db",
            &db,
            "--scenario",
            "tunnel-small",
            "--seed",
            "5",
            "--clip-id",
            "1",
            "--location",
            "tunnel-x",
            "--archive-video",
        ])
        .unwrap();
        run(&["list", "--db", &db]).unwrap();
        run(&["list", "--db", &db, "--location", "tunnel-x"]).unwrap();
        run(&["info", "--db", &db, "--clip-id", "1"]).unwrap();
        run(&[
            "query",
            "--db",
            &db,
            "--clip-id",
            "1",
            "--rounds",
            "2",
            "--top",
            "5",
        ])
        .unwrap();
        run(&["sessions", "--db", &db, "--clip-id", "1"]).unwrap();
        run(&[
            "resume",
            "--db",
            &db,
            "--clip-id",
            "1",
            "--rounds",
            "1",
            "--top",
            "5",
        ])
        .unwrap();

        // Cross-camera search over everything in the db.
        run(&[
            "simulate",
            "--db",
            &db,
            "--scenario",
            "tunnel-small",
            "--seed",
            "6",
            "--clip-id",
            "2",
        ])
        .unwrap();
        run(&["search", "--db", &db, "--rounds", "1", "--top", "5"]).unwrap();
        run(&[
            "search", "--db", &db, "--clips", "1,2", "--rounds", "1", "--top", "5",
        ])
        .unwrap();
        assert!(run(&["search", "--db", &db, "--clips", "1,oops"]).is_err());

        let out = temp_db("frames-out");
        run(&[
            "export",
            "--db",
            &db,
            "--clip-id",
            "1",
            "--from",
            "50",
            "--to",
            "53",
            "--out",
            &out,
        ])
        .unwrap();
        let count = std::fs::read_dir(&out).unwrap().count();
        assert_eq!(count, 3);
        // PGM header sanity.
        let first = std::fs::read_dir(&out).unwrap().next().unwrap().unwrap();
        let bytes = std::fs::read(first.path()).unwrap();
        assert!(bytes.starts_with(b"P5\n320 240\n255\n"));

        run(&["verify", "--db", &db]).unwrap();
        run(&["compact", "--db", &db]).unwrap();
        // A post-compaction verify must still find a clean database.
        run(&["verify", "--db", &db]).unwrap();
        let _ = std::fs::remove_dir_all(&out);
        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn sim_lists_and_runs_fleet_members() {
        // Bare `sim` and `sim --list` both print the registry.
        run(&["sim"]).unwrap();
        run(&["sim", "--list"]).unwrap();
        // A dry run of a fleet member succeeds and needs no --db.
        run(&["sim", "--scenario", "wrong_way", "--seed", "2007"]).unwrap();
        // The handoff member reports its camera boundary.
        run(&["sim", "--scenario", "handoff", "--seed", "2007"]).unwrap();
        assert!(run(&["sim", "--scenario", "ufo_landing"]).is_err());
    }

    #[test]
    fn fleet_members_simulate_into_a_db_and_answer_their_query() {
        let db = temp_db("fleet");
        run(&[
            "simulate",
            "--db",
            &db,
            "--scenario",
            "pedestrian",
            "--seed",
            "2007",
            "--clip-id",
            "9",
        ])
        .unwrap();
        // The fleet member's target kind is a valid --event name.
        run(&[
            "query",
            "--db",
            &db,
            "--clip-id",
            "9",
            "--event",
            "pedestrian",
            "--rounds",
            "1",
            "--top",
            "5",
        ])
        .unwrap();
        assert!(run(&[
            "query", "--db", &db, "--clip-id", "9", "--event", "warp_drive",
        ])
        .is_err());
        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["list"]).is_err()); // missing --db
        let db = temp_db("err");
        run(&[
            "simulate",
            "--db",
            &db,
            "--scenario",
            "tunnel-small",
            "--clip-id",
            "1",
        ])
        .unwrap();
        // Unknown learner / event / scenario.
        assert!(run(&["query", "--db", &db, "--clip-id", "1", "--learner", "magic"]).is_err());
        assert!(run(&["query", "--db", &db, "--clip-id", "1", "--event", "ufo"]).is_err());
        assert!(run(&[
            "simulate",
            "--db",
            &db,
            "--scenario",
            "moonbase",
            "--clip-id",
            "2"
        ])
        .is_err());
        // Duplicate clip id.
        assert!(run(&[
            "simulate",
            "--db",
            &db,
            "--scenario",
            "tunnel-small",
            "--clip-id",
            "1"
        ])
        .is_err());
        // Export without archived video.
        assert!(run(&[
            "export",
            "--db",
            &db,
            "--clip-id",
            "1",
            "--from",
            "0",
            "--to",
            "3",
            "--out",
            &temp_db("noframes")
        ])
        .is_err());
        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn verify_reports_damage_without_failing() {
        let db = temp_db("verify-damaged");
        run(&[
            "simulate",
            "--db",
            &db,
            "--scenario",
            "tunnel-small",
            "--clip-id",
            "1",
        ])
        .unwrap();
        // Flip one stored byte past the magic and the first frame
        // header; verify must report the damage, not error out, and a
        // compact afterwards must leave a clean database behind.
        let mut bytes = std::fs::read(&db).unwrap();
        let target = bytes.len() / 2;
        bytes[target] ^= 0x08;
        std::fs::write(&db, &bytes).unwrap();
        run(&["verify", "--db", &db]).unwrap();
        run(&["compact", "--db", &db]).unwrap();
        run(&["verify", "--db", &db]).unwrap();
        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn interactive_query_with_piped_labels() {
        let db = temp_db("interactive");
        run(&[
            "simulate",
            "--db",
            &db,
            "--scenario",
            "tunnel-small",
            "--seed",
            "5",
            "--clip-id",
            "1",
        ])
        .unwrap();
        // Drive the interactive session with canned answers.
        let mut dbh = AnyDb::open(Path::new(&db)).unwrap();
        let bundle = dbh.load_clip(1).unwrap();
        let bags = bags_from_bundle(&bundle, &FeatureConfig::default());
        let event = EventQuery::accidents();
        let labels = labels_from_bundle(&bundle, &event);
        let cfg = SessionConfig {
            top_n: 3,
            feedback_rounds: 2,
            ..SessionConfig::default()
        };
        let answers = "y\nn\ny\nn\nn\ny\n";
        let mut input = std::io::Cursor::new(answers.as_bytes());
        interactive_query(
            &mut dbh,
            1,
            &bundle,
            &bags,
            &event,
            &labels,
            cfg,
            LearnerKind::paper_ocsvm(),
            &mut input,
        )
        .unwrap();
        let sessions = dbh.sessions_for_clip(1).unwrap();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].feedback.len(), 2);
        assert_eq!(sessions[0].feedback[0].len(), 3);
        // Early-closed input is handled too.
        let mut short = std::io::Cursor::new(b"y\n".as_slice());
        interactive_query(
            &mut dbh,
            1,
            &bundle,
            &bags,
            &event,
            &labels,
            cfg,
            LearnerKind::paper_ocsvm(),
            &mut short,
        )
        .unwrap();
        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn help_prints() {
        run(&["help"]).unwrap();
    }

    #[test]
    fn session_subcommand_workflow() {
        let db = temp_db("session-flow");
        run(&[
            "simulate",
            "--db",
            &db,
            "--scenario",
            "tunnel-small",
            "--seed",
            "5",
            "--clip-id",
            "1",
        ])
        .unwrap();
        // Listing an empty database is fine.
        run(&["session", "list", "--db", &db]).unwrap();
        run(&[
            "query", "--db", &db, "--clip-id", "1", "--rounds", "2", "--top", "5",
        ])
        .unwrap();
        run(&["session", "list", "--db", &db]).unwrap();
        run(&["session", "list", "--db", &db, "--clip-id", "1"]).unwrap();
        // Replay the stored session: the stored row names its learner,
        // so no --learner is needed...
        run(&[
            "session", "replay", "--db", &db, "--clip-id", "1", "--session", "1", "--top", "5",
        ])
        .unwrap();
        // ...a matching explicit learner also works...
        run(&[
            "session", "replay", "--db", &db, "--clip-id", "1", "--session", "1", "--learner",
            "ocsvm",
        ])
        .unwrap();
        // ...and a mismatched one is the typed replay error.
        let err = run(&[
            "session", "replay", "--db", &db, "--clip-id", "1", "--session", "1", "--learner",
            "wrf",
        ])
        .unwrap_err();
        assert!(err.contains("MIL_OneClassSVM"), "unexpected error: {err}");
        // `session continue` == `resume`, including the mismatch check.
        run(&[
            "session", "continue", "--db", &db, "--clip-id", "1", "--session", "1", "--rounds",
            "1", "--top", "5",
        ])
        .unwrap();
        assert!(run(&[
            "session", "continue", "--db", &db, "--clip-id", "1", "--session", "1", "--learner",
            "wrf",
        ])
        .is_err());
        // Error paths: missing/unknown action, unknown session.
        assert!(run(&["session", "--db", &db]).is_err());
        assert!(run(&["session", "frobnicate", "--db", &db]).is_err());
        assert!(run(&[
            "session", "replay", "--db", &db, "--clip-id", "1", "--session", "99",
        ])
        .is_err());
        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn serve_command_validates_flags() {
        let db = temp_db("serve-flags");
        run(&[
            "simulate",
            "--db",
            &db,
            "--scenario",
            "tunnel-small",
            "--clip-id",
            "1",
        ])
        .unwrap();
        assert!(run(&["serve", "--db", &db, "--workers", "0"]).is_err());
        assert!(run(&["serve", "--db", &db, "--addr", "999.999.999.999:1"]).is_err());
        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn index_workflow() {
        let db = temp_db("index-flow");
        for (seed, id) in [("5", "1"), ("6", "2")] {
            run(&[
                "simulate",
                "--db",
                &db,
                "--scenario",
                "tunnel-small",
                "--seed",
                seed,
                "--clip-id",
                id,
            ])
            .unwrap();
        }
        // Before building: verify reports both indexes missing.
        run(&["index", "verify", "--db", &db]).unwrap();
        run(&["index", "build", "--db", &db]).unwrap();
        run(&["index", "verify", "--db", &db]).unwrap();
        {
            let mut dbh = VideoDb::open(Path::new(&db)).unwrap();
            assert_eq!(dbh.index_count(), 2);
            // The stored index serves the default configuration.
            assert!(tsvr_core::load_index(&mut dbh, 1, &WindowConfig::default())
                .unwrap()
                .is_some());
        }
        // Queries ride the index; a rebuild refreshes it in place.
        run(&[
            "query",
            "--db",
            &db,
            "--clip-id",
            "1",
            "--rounds",
            "1",
            "--top",
            "5",
            "--use-index",
        ])
        .unwrap();
        run(&[
            "search",
            "--db",
            &db,
            "--rounds",
            "1",
            "--top",
            "5",
            "--use-index",
        ])
        .unwrap();
        run(&[
            "query",
            "--db",
            &db,
            "--clip-id",
            "2",
            "--rounds",
            "1",
            "--top",
            "5",
            "--rebuild-index",
        ])
        .unwrap();
        // Subset selection and error paths.
        run(&["index", "build", "--db", &db, "--clips", "1"]).unwrap();
        assert!(run(&["index", "--db", &db]).is_err(), "missing action");
        assert!(run(&["index", "frobnicate", "--db", &db]).is_err());
        assert!(run(&["index", "build", "--db", &db, "--clips", "99"]).is_err());
        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn demo_writes_metrics_and_stats_renders_them() {
        let metrics = temp_db("metrics.json");
        run(&[
            "demo",
            "--seed",
            "5",
            "--rounds",
            "2",
            "--top",
            "5",
            "--metrics-out",
            &metrics,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&metrics).unwrap();
        let snap = tsvr_obs::Snapshot::from_json(&text).unwrap();
        if tsvr_obs::is_enabled() {
            // One process exercised every instrumented subsystem.
            for span in [
                "vision.segment",
                "trajectory.window.build",
                "svm.train",
                "mil.session",
                "viddb.append",
                "core.prepare_clip",
            ] {
                assert!(
                    snap.histograms.iter().any(|h| h.name == span),
                    "span {span} missing from snapshot"
                );
            }
            assert!(snap.counters.iter().any(|c| c.name == "vision.frames"));
        }
        run(&["stats", "--metrics", &metrics]).unwrap();
        assert!(run(&["stats", "--metrics", "/nonexistent/x.json"]).is_err());
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn ops_plane_commands_against_a_live_server() {
        let db = temp_db("ops-plane");
        run(&[
            "simulate",
            "--db",
            &db,
            "--scenario",
            "tunnel-small",
            "--seed",
            "5",
            "--clip-id",
            "1",
        ])
        .unwrap();
        // Retain every traced request so `slowlog` has something to show.
        tsvr_obs::trace::set_slow_threshold_ns(0);
        let service = std::sync::Arc::new(tsvr_serve::Service::new(
            VideoDb::open(Path::new(&db)).unwrap(),
            tsvr_serve::ServiceConfig::default(),
        ));
        let server = tsvr_serve::Server::start(
            std::sync::Arc::clone(&service),
            "127.0.0.1:0",
            tsvr_serve::ServerConfig {
                workers: 2,
                queue_cap: 8,
            },
        )
        .unwrap();
        let addr = server.addr().to_string();
        // One real request to trace.
        match ops_request(
            &addr,
            tsvr_serve::Request::Open {
                clip_id: 1,
                query: "accident".into(),
                learner: String::new(),
            },
        )
        .unwrap()
        {
            tsvr_serve::Response::Opened { .. } => {}
            other => panic!("open failed: {other:?}"),
        }

        run(&["stats", "--addr", &addr]).unwrap();
        if tsvr_obs::is_enabled() {
            run(&["trace", "--addr", &addr]).unwrap();
            run(&["slowlog", "--addr", &addr]).unwrap();
            // A bogus id is a typed not_found.
            let e = run(&["trace", "--addr", &addr, "--id", "999999999"]).unwrap_err();
            assert!(e.contains("not_found"), "unexpected error: {e}");
        } else {
            // Without probes there are no retained traces.
            assert!(run(&["trace", "--addr", &addr]).is_err());
            run(&["slowlog", "--addr", &addr]).unwrap();
        }
        assert!(run(&["trace", "--addr", &addr, "--id", "zebra"]).is_err());
        assert!(run(&["stats"]).is_err(), "needs --metrics or --addr");

        server.shutdown();
        tsvr_obs::trace::set_slow_threshold_ns(u64::MAX);
        let _ = std::fs::remove_file(&db);
    }

    #[test]
    fn stats_rejects_malformed_snapshots() {
        let path = temp_db("badmetrics.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(run(&["stats", "--metrics", &path]).is_err());
        std::fs::write(&path, "{\"schema\": \"other/9\"}").unwrap();
        assert!(run(&["stats", "--metrics", &path]).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
