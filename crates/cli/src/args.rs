//! Minimal `--flag value` argument parsing.

use std::collections::HashMap;

/// Parsed arguments: positional subcommand plus `--key value` pairs and
/// bare `--switch` flags.
#[derive(Debug, Default)]
pub struct Args {
    options: HashMap<String, String>,
    switches: Vec<String>,
}

/// Parsing error with a user-facing message.
pub type ArgError = String;

impl Args {
    /// Parses everything after the subcommand.
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {a:?}"));
            };
            // A flag is a switch when it is last or followed by another
            // --flag.
            if i + 1 >= argv.len() || argv[i + 1].starts_with("--") {
                args.switches.push(key.to_string());
                i += 1;
            } else {
                args.options.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Parsed numeric option with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {s:?}")),
        }
    }

    /// Whether a bare switch is present.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_options_and_switches() {
        let a = Args::parse(&sv(&["--db", "x.db", "--archive-video", "--seed", "7"])).unwrap();
        assert_eq!(a.get("db"), Some("x.db"));
        assert_eq!(a.num::<u64>("seed", 0).unwrap(), 7);
        assert!(a.switch("archive-video"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn trailing_switch() {
        let a = Args::parse(&sv(&["--compact"])).unwrap();
        assert!(a.switch("compact"));
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(&sv(&["oops"])).is_err());
    }

    #[test]
    fn require_and_defaults() {
        let a = Args::parse(&sv(&["--db", "x.db"])).unwrap();
        assert!(a.require("db").is_ok());
        assert!(a.require("clip-id").is_err());
        assert_eq!(a.num::<u32>("rounds", 4).unwrap(), 4);
        let bad = Args::parse(&sv(&["--rounds", "abc"])).unwrap();
        assert!(bad.num::<u32>("rounds", 4).is_err());
    }
}
