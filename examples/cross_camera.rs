//! Cross-camera retrieval — the paper's stated limitation, implemented.
//!
//! §6.2: "the retrieval is performed independently for each group of
//! videos taken by the same camera at the same location" because
//! camera-relative features do not transfer. With fixed physical-range
//! feature normalization, windows from different cameras share one
//! feature space, so a single feedback session can mine the whole
//! database at once.
//!
//! Run with: `cargo run --release --example cross_camera`

use tsvr::core::{
    bundle_from_clip, prepare_clip, EventQuery, LearnerKind, MultiClipIndex, PipelineOptions,
};
use tsvr::mil::{GroundTruthOracle, RetrievalSession, SessionConfig};
use tsvr::sim::Scenario;
use tsvr::trajectory::checkpoint::FeatureConfig;
use tsvr::viddb::{ClipMeta, VideoDb};

fn meta(clip_id: u64, location: &str, camera: &str, frames: u32) -> ClipMeta {
    ClipMeta {
        clip_id,
        name: format!("{location} / {camera}"),
        location: location.into(),
        camera: camera.into(),
        start_time: clip_id * 7200,
        frame_count: frames,
        width: 320,
        height: 240,
    }
}

fn main() {
    // Two cameras at different sites: a tunnel and an intersection.
    println!("preparing two clips from different cameras...");
    let tunnel = prepare_clip(&Scenario::tunnel_paper(2007), &PipelineOptions::default());
    let crossing = prepare_clip(
        &Scenario::intersection_paper(2007),
        &PipelineOptions::default(),
    );

    let mut db = VideoDb::in_memory();
    db.put_clip(&bundle_from_clip(
        &tunnel,
        meta(1, "tunnel-17", "cam-a", 2504),
    ))
    .unwrap();
    db.put_clip(&bundle_from_clip(
        &crossing,
        meta(2, "crossing-3", "cam-b", 592),
    ))
    .unwrap();

    let b1 = db.load_clip(1).unwrap();
    let b2 = db.load_clip(2).unwrap();
    let query = EventQuery::accidents();
    let index = MultiClipIndex::build(&[&b1, &b2], &query, &FeatureConfig::default());
    println!(
        "unified database: {} windows ({} from the tunnel, {} from the intersection)",
        index.len(),
        b1.windows.len(),
        b2.windows.len()
    );

    let oracle = GroundTruthOracle::new(index.labels.clone());
    let (report, _) = RetrievalSession::new(
        &index.bags,
        LearnerKind::paper_ocsvm().build_for(&index.bags),
        &oracle,
        SessionConfig::default(),
    )
    .run();

    println!("\ncross-camera accident session ({}):", report.learner);
    for (round, acc) in report.accuracies.iter().enumerate() {
        println!("  round {round}: accuracy@20 = {:.0}%", acc * 100.0);
    }

    println!("\nfinal top-10, resolved back to their cameras:");
    for &bag in report.rankings.last().unwrap().iter().take(10) {
        let (clip, window) = index.resolve(bag).unwrap();
        let m = db.meta(clip).unwrap();
        println!(
            "  {} window {:>3}  ({})",
            if index.labels[bag] {
                "ACCIDENT "
            } else {
                "         "
            },
            window,
            m.name
        );
    }
}
