//! The paper's clip-2 setting, plus what §4 promises: the same event
//! model re-targeted at a *different* event type. Queries the
//! intersection clip first for accidents (Figure 9) and then for
//! U-turns, reusing the same features and learner.
//!
//! Run with: `cargo run --release --example intersection_collisions`

use tsvr::core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
use tsvr::mil::SessionConfig;
use tsvr::sim::Scenario;

fn print_report(title: &str, r: &tsvr::mil::SessionReport) {
    println!("\n{title} ({}):", r.learner);
    for (round, acc) in r.accuracies.iter().enumerate() {
        println!("  round {round}: {:>5.0}%", acc * 100.0);
    }
    println!(
        "  ({} relevant windows; page ceiling {:.0}%)",
        r.relevant_total,
        r.ceiling * 100.0
    );
}

fn main() {
    println!("preparing the intersection clip (592 frames)...");
    let clip = prepare_clip(
        &Scenario::intersection_paper(2007),
        &PipelineOptions::default(),
    );
    println!(
        "{} tracked vehicles, {} windows, {} trajectory sequences",
        clip.vision.tracks.len(),
        clip.dataset.window_count(),
        clip.dataset.sequence_count()
    );

    let cfg = SessionConfig {
        top_n: 10,
        feedback_rounds: 3,
        ..SessionConfig::default()
    };

    // Query 1: multi-vehicle accidents (side collisions, rear-end
    // crashes) — the paper's evaluation query.
    let accidents = run_session(
        &clip,
        &EventQuery::accidents(),
        LearnerKind::paper_ocsvm(),
        cfg,
    );
    print_report("accident query", &accidents);

    // Query 2: U-turns — the paper's §4 notes the event model "may also
    // be adjusted to detect U-turns, speeding and any other event that
    // involves the abnormal behavior of a vehicle". Nothing changes but
    // which windows the oracle (user) calls relevant.
    let uturns = run_session(
        &clip,
        &EventQuery::u_turns(),
        LearnerKind::paper_ocsvm(),
        cfg,
    );
    print_report("u-turn query", &uturns);

    println!("\nsame features, same learner — only the user's feedback differs between\nthe two queries. That is the point of the relevance-feedback design.");
}
