//! The paper's §7 future-work query types, implemented: **query by
//! example** (hand the system a window you liked, get more like it) and
//! **query by sketch** (draw a trajectory shape, get tracks shaped like
//! it). Both reuse the pipeline artifacts of a prepared clip.
//!
//! Run with: `cargo run --release --example advanced_queries`

use tsvr::core::pipeline::median_heuristic_gamma;
use tsvr::core::{prepare_clip, EventQuery, PipelineOptions, SketchQuery};
use tsvr::mil::qbe::QueryByExample;
use tsvr::mil::session::rank_by;
use tsvr::mil::{GroundTruthOracle, Learner, Oracle, RetrievalSession, SessionConfig};
use tsvr::sim::Scenario;
use tsvr::svm::Kernel;

fn main() {
    println!("preparing the tunnel clip...");
    let clip = prepare_clip(&Scenario::tunnel_paper(2007), &PipelineOptions::default());
    let labels = clip.labels(&EventQuery::accidents());
    let oracle = GroundTruthOracle::new(labels.clone());

    // ---- query by example ---------------------------------------------------
    // The "user" picks one known accident window as the example.
    let example_id = labels
        .iter()
        .position(|&l| l)
        .expect("clip has accident windows");
    println!("\nquery by example: 'find windows like window {example_id}' (an accident scene)");
    let gamma = median_heuristic_gamma(&clip.bags);
    let mut qbe = QueryByExample::new(Kernel::Rbf { gamma });
    qbe.add_example_bag(&clip.bags[example_id]);

    // One-shot ranking, no feedback at all:
    let ranking = rank_by(&clip.bags, |b| qbe.score(b));
    let hits = ranking.iter().take(20).filter(|&&b| labels[b]).count();
    println!(
        "  one-shot accuracy@20 from a single example: {}%",
        hits * 5
    );

    // Or the full interactive session, seeded by the example (the
    // initial page comes from the example, later pages refine it):
    let cfg = SessionConfig {
        top_n: 20,
        feedback_rounds: 2,
        initial_from_learner: true,
    };
    let (report, _) = RetrievalSession::new(&clip.bags, qbe, &oracle, cfg).run();
    println!(
        "  with 2 feedback rounds on top: {:?}",
        report
            .accuracies
            .iter()
            .map(|a| format!("{:.0}%", a * 100.0))
            .collect::<Vec<_>>()
    );

    // ---- query by sketch ----------------------------------------------------
    println!("\nquery by sketch: 'find trajectories shaped like this straight pass'");
    let sketch = SketchQuery::straight_pass();
    let ranked_tracks = sketch.rank_tracks(&clip.vision.tracks);
    println!("  best-matching tracks (id, shape distance):");
    for (t, d) in ranked_tracks.iter().take(5) {
        println!(
            "    track {:>3}  dist {:.4}  frames {}..={}",
            t.id,
            d,
            t.start_frame(),
            t.end_frame()
        );
    }
    let worst = ranked_tracks.last().unwrap();
    println!(
        "  least similar: track {} (dist {:.4}) — {}",
        worst.0.id,
        worst.1,
        if labels.is_empty() {
            ""
        } else {
            "likely a crash/veer trajectory"
        }
    );

    // Window-level sketch retrieval:
    let windows = sketch.rank_windows(&clip);
    println!(
        "  top windows by sketch: {:?}",
        windows.iter().take(5).map(|(w, _)| *w).collect::<Vec<_>>()
    );
    let _ = oracle.relevant_count();
}
