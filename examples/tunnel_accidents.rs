//! The paper's clip-1 experiment as a workflow: a 2504-frame tunnel
//! clip, an accident query, and a comparison of the proposed MIL
//! One-class SVM against the weighted-RF baseline over four feedback
//! rounds (Figure 8).
//!
//! Run with: `cargo run --release --example tunnel_accidents`

use tsvr::core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
use tsvr::mil::SessionConfig;
use tsvr::sim::Scenario;

fn main() {
    println!("preparing the tunnel clip (2504 frames; this renders and segments\nevery frame, expect a few seconds)...");
    let clip = prepare_clip(&Scenario::tunnel_paper(2007), &PipelineOptions::default());

    let query = EventQuery::accidents();
    println!("\nincidents in the clip:");
    for rec in &clip.sim.incidents {
        println!(
            "  {:<16} frames {:>4}..{:<4} vehicles {:?}{}",
            rec.kind.name(),
            rec.start_frame,
            rec.end_frame,
            rec.vehicle_ids,
            if query.matches(rec.kind) {
                ""
            } else {
                "  (not an accident)"
            }
        );
    }

    let cfg = SessionConfig::default(); // top 20, 4 rounds — the paper's protocol
    let mil = run_session(&clip, &query, LearnerKind::paper_ocsvm(), cfg);
    let wrf = run_session(&clip, &query, LearnerKind::paper_weighted_rf(), cfg);

    println!("\naccuracy@20 per round:");
    println!(
        "{:<20}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "", "Initial", "First", "Second", "Third", "Fourth"
    );
    for r in [&mil, &wrf] {
        print!("{:<20}", r.learner);
        for a in &r.accuracies {
            print!("{:>8.0}%", a * 100.0);
        }
        println!();
    }
    println!(
        "\n({} of {} windows show accidents; the best any method can reach in a\n20-item page is {:.0}%)",
        mil.relevant_total,
        clip.bags.len(),
        mil.ceiling * 100.0
    );
}
