//! The database workflow of the paper's setting (§1): ingest processed
//! clips with their time/place/camera metadata into the surveillance
//! video database, query the catalog, reload a clip, run a retrieval
//! session from the stored records, and persist the session itself.
//!
//! Run with: `cargo run --release --example database_workflow`

use tsvr::core::{
    archive_clip_video, bags_from_bundle, bundle_from_clip, labels_from_bundle, prepare_clip,
    EventQuery, LearnerKind, PipelineOptions,
};
use tsvr::mil::{GroundTruthOracle, RetrievalSession, SessionConfig};
use tsvr::sim::Scenario;
use tsvr::trajectory::checkpoint::FeatureConfig;
use tsvr::viddb::FrameCodec;
use tsvr::viddb::{ClipMeta, SessionRow, VideoDb};

fn main() {
    let mut path = std::env::temp_dir();
    path.push("tsvr-example.db");
    let _ = std::fs::remove_file(&path);

    // --- ingestion -------------------------------------------------------
    let mut db = VideoDb::open(&path).expect("open database");
    println!("ingesting two clips into {}...", path.display());
    for (id, scenario, location) in [
        (1u64, Scenario::tunnel_small(41), "tunnel-17"),
        (2u64, Scenario::tunnel_small(42), "tunnel-17"),
    ] {
        let clip = prepare_clip(&scenario, &PipelineOptions::default());
        let bundle = bundle_from_clip(
            &clip,
            ClipMeta {
                clip_id: id,
                name: format!("evening batch #{id}"),
                location: location.into(),
                camera: "cam-03".into(),
                start_time: 1_167_609_600 + id * 3_600,
                frame_count: scenario.total_frames,
                width: 320,
                height: 240,
            },
        );
        db.put_clip(&bundle).expect("ingest clip");
        // Archive the pixel stream too (quantized + delta + RLE), so a
        // retrieved window can be played back later.
        let segments = archive_clip_video(&mut db, id, &clip, FrameCodec::default(), 50)
            .expect("archive video");
        println!("  clip {id}: {segments} video segments archived");
    }
    println!(
        "catalog now holds {} clips, log size {} bytes",
        db.clip_count(),
        db.log_size()
    );

    // --- metadata query ---------------------------------------------------
    let hits = db.find_by_location("tunnel-17");
    println!("\nclips at 'tunnel-17':");
    for m in hits {
        println!(
            "  #{} {:?} t0={} frames={}",
            m.clip_id, m.name, m.start_time, m.frame_count
        );
    }

    // --- retrieval from stored records -------------------------------------
    let bundle = db.load_clip(1).expect("load clip 1");
    let bags = bags_from_bundle(&bundle, &FeatureConfig::default());
    let query = EventQuery::accidents();
    let labels = labels_from_bundle(&bundle, &query);
    let oracle = GroundTruthOracle::new(labels);
    let cfg = SessionConfig {
        top_n: 5,
        feedback_rounds: 2,
        ..SessionConfig::default()
    };
    let (report, _) = RetrievalSession::new(
        &bags,
        LearnerKind::paper_ocsvm().build_for(&bags),
        &oracle,
        cfg,
    )
    .run();
    println!("\nsession over stored clip 1 ({}):", report.learner);
    for (round, acc) in report.accuracies.iter().enumerate() {
        println!("  round {round}: {:>4.0}%", acc * 100.0);
    }

    // --- persist the session ------------------------------------------------
    db.put_session(&SessionRow {
        session_id: 9001,
        clip_id: 1,
        query: query.name.into(),
        learner: report.learner.into(),
        feedback: report
            .rankings
            .iter()
            .take(report.rankings.len() - 1)
            .map(|ranking| {
                ranking
                    .iter()
                    .take(cfg.top_n)
                    .map(|&w| (w as u32, oracle_label(&oracle, w)))
                    .collect()
            })
            .collect(),
        accuracies: report.accuracies.clone(),
    })
    .expect("persist session");

    // --- play back a retrieved window's frames -------------------------------
    let top_window = report.rankings.last().unwrap()[0] as u32;
    let (start, end) = {
        let w = &bundle.windows[top_window as usize];
        (w.start_frame, w.end_frame)
    };
    let frames = db
        .load_frames(1, start, end + 1)
        .expect("load archived frames");
    println!(
        "\nplayback: window {top_window} covers frames {start}..={end}; loaded {} frames\nmean intensity of first frame: {:.1}",
        frames.len(),
        frames[0].1.pixels.iter().map(|&p| p as f64).sum::<f64>() / frames[0].1.pixels.len() as f64
    );

    // --- reopen and verify durability ---------------------------------------
    drop(db);
    let mut db = VideoDb::open(&path).expect("reopen");
    let sessions = db.sessions_for_clip(1).expect("load sessions");
    println!(
        "\nafter reopen: {} clips, {} persisted session(s) for clip 1 (accuracies {:?})",
        db.clip_count(),
        sessions.len(),
        sessions[0].accuracies
    );
    let _ = std::fs::remove_file(&path);
}

fn oracle_label(oracle: &GroundTruthOracle, w: usize) -> bool {
    use tsvr::mil::Oracle;
    oracle.label(w)
}
