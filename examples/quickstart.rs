//! Quickstart: simulate a short surveillance clip, run the full
//! pipeline (render → segment → track → features → windows), and
//! retrieve accident scenes with the interactive MIL framework.
//!
//! Run with: `cargo run --release --example quickstart`

use tsvr::core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
use tsvr::mil::SessionConfig;
use tsvr::sim::Scenario;

fn main() {
    // A 400-frame tunnel clip with two scripted accidents.
    let scenario = Scenario::tunnel_small(7);
    println!("simulating {} frames...", scenario.total_frames);
    let clip = prepare_clip(&scenario, &PipelineOptions::default());

    println!(
        "pipeline: {} tracked vehicles -> {} windows / {} trajectory sequences",
        clip.vision.tracks.len(),
        clip.dataset.window_count(),
        clip.dataset.sequence_count()
    );
    println!(
        "ground truth: {} incidents ({} accident windows)",
        clip.sim.incidents.len(),
        clip.labels(&EventQuery::accidents())
            .iter()
            .filter(|&&l| l)
            .count()
    );

    // Interactive retrieval: 5 results per page, 2 feedback rounds.
    let report = run_session(
        &clip,
        &EventQuery::accidents(),
        LearnerKind::paper_ocsvm(),
        SessionConfig {
            top_n: 5,
            feedback_rounds: 2,
            ..SessionConfig::default()
        },
    );

    println!("\nretrieval accuracy@5 per round ({}):", report.learner);
    for (round, acc) in report.accuracies.iter().enumerate() {
        let label = if round == 0 {
            "initial (heuristic)".to_string()
        } else {
            format!("after feedback round {round}")
        };
        println!("  {label:<24} {:>5.0}%", acc * 100.0);
    }
    println!(
        "\ntop-5 windows of the final round: {:?}",
        &report.rankings.last().unwrap()[..5.min(clip.bags.len())]
    );
}
