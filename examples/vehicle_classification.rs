//! The PCA-based vehicle classification stage of the paper's substrate
//! (§3.1, citing [13]): classify tracked vehicles into cars, SUVs and
//! pick-up trucks from their blob statistics.
//!
//! Run with: `cargo run --release --example vehicle_classification`

use tsvr::sim::{Scenario, VehicleClass, World};
use tsvr::vision::pca::PcaClassifier;
use tsvr::vision::pipeline::{match_ground_truth, process, PipelineConfig};

fn main() {
    // Training clip and a separate evaluation clip (different seeds).
    // Denser, longer traffic than the retrieval clips so both sets hold
    // a useful number of vehicles.
    let busy = |seed| {
        let mut s = Scenario::tunnel_small(seed);
        s.total_frames = 1200;
        s.mean_spawn_interval = 55.0;
        s.incidents.clear();
        s
    };
    println!("tracking vehicles in the training clip...");
    let train_sim = World::run(busy(100));
    let train_out = process(
        &train_sim,
        tsvr::sim::ScenarioKind::Tunnel,
        &PipelineConfig::default(),
    );
    let train_ids = match_ground_truth(&train_out.tracks, &train_sim, 15.0);

    // Label tracks with their ground-truth class via the simulator.
    let class_of = |sim: &tsvr::sim::world::SimOutput, id: u64| -> Option<VehicleClass> {
        sim.frames
            .iter()
            .flat_map(|f| f.vehicles.iter())
            .find(|v| v.id == id)
            .map(|v| v.class)
    };
    let mut samples = Vec::new();
    for (track, matched) in train_out.tracks.iter().zip(&train_ids) {
        if let Some(class) = matched.and_then(|id| class_of(&train_sim, id)) {
            samples.push((track.stats, class));
        }
    }
    println!(
        "training PCA classifier on {} labeled tracks",
        samples.len()
    );
    let clf = PcaClassifier::train(&samples, 3).expect("train");
    println!(
        "retained {} components ({:.0}% variance explained)",
        clf.components(),
        clf.explained_variance * 100.0
    );

    println!("\ntracking vehicles in the evaluation clip...");
    let eval_sim = World::run(busy(200));
    let eval_out = process(
        &eval_sim,
        tsvr::sim::ScenarioKind::Tunnel,
        &PipelineConfig::default(),
    );
    let eval_ids = match_ground_truth(&eval_out.tracks, &eval_sim, 15.0);

    let classes = [VehicleClass::Car, VehicleClass::Suv, VehicleClass::Pickup];
    let mut confusion = [[0usize; 3]; 3];
    let mut total = 0;
    let mut correct = 0;
    for (track, matched) in eval_out.tracks.iter().zip(&eval_ids) {
        let Some(truth) = matched.and_then(|id| class_of(&eval_sim, id)) else {
            continue;
        };
        let pred = clf.classify(&track.stats);
        let ti = classes.iter().position(|&c| c == truth).unwrap();
        let pi = classes.iter().position(|&c| c == pred).unwrap();
        confusion[ti][pi] += 1;
        total += 1;
        if truth == pred {
            correct += 1;
        }
    }

    println!("\nconfusion matrix (rows = truth, cols = prediction):");
    println!("{:<10}{:>8}{:>8}{:>8}", "", "car", "suv", "pickup");
    for (ti, row) in confusion.iter().enumerate() {
        print!("{:<10}", classes[ti].name());
        for v in row {
            print!("{v:>8}");
        }
        println!();
    }
    println!(
        "\naccuracy: {correct}/{total} = {:.0}%",
        100.0 * correct as f64 / total.max(1) as f64
    );
}
